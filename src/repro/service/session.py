"""Stream sessions: the unit of admission for the real-time service.

A *session* is one camera's live connection to the service.  Where the
batch :class:`~repro.cluster.fleet.FleetOrchestrator` receives each
camera's footage as a single pre-planned :class:`CameraJob`, a live camera
delivers the same work incrementally as a stream of :class:`FrameChunk`
pushes — a group-of-pictures worth of frames with its pro-rated compute
and transfer costs.  :func:`chunk_camera_job` slices a planned job into
such chunks *exactly* (frame, byte and second totals are preserved), which
is what lets the streaming service replay a fleet workload chunk-by-chunk
and still reconcile against the batch report.

Sessions are grouped under a :class:`TenantPolicy` — the per-customer
admission quota and (optionally) a per-tenant :class:`SystemConfig` that
sizes the camera uplinks of that tenant's sessions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..adapt.signals import ChunkScene
from ..codec.gop import EncoderParameters
from ..config import SystemConfig
from ..errors import ServiceError


class SessionState(enum.Enum):
    """Lifecycle of a stream session."""

    #: Admitted; accepts frame pushes.
    OPEN = "open"
    #: Close requested; no new pushes, in-flight chunks still completing.
    DRAINING = "draining"
    #: All in-flight work finished (or none existed) after a close.
    CLOSED = "closed"


@dataclass(frozen=True)
class FrameChunk:
    """One pushed unit of camera footage (roughly a group of pictures).

    Attributes:
        num_frames: Frames in the chunk (I and P).
        frames_for_inference: Frames that will undergo NN inference.
        edge_seconds: Compute seconds this chunk charges its edge server.
        cloud_seconds: Compute seconds charged to the cloud tier.
        camera_edge_bytes: Bytes moved camera -> edge (LAN).
        edge_cloud_bytes: Bytes moved edge -> cloud (WAN).
        scene: Optional per-chunk scene payload
            (:class:`~repro.adapt.signals.ChunkScene`) feeding the online
            drift detectors.  ``None`` (the default) keeps the chunk
            invisible to the adaptive controller — the seed path.
    """

    num_frames: int
    frames_for_inference: int
    edge_seconds: float
    cloud_seconds: float
    camera_edge_bytes: int
    edge_cloud_bytes: int
    scene: Optional[ChunkScene] = None

    def __post_init__(self) -> None:
        if self.num_frames < 0 or self.frames_for_inference < 0:
            raise ServiceError("chunk frame counts must be >= 0")
        if self.edge_seconds < 0 or self.cloud_seconds < 0:
            raise ServiceError("chunk compute seconds must be >= 0")
        if self.camera_edge_bytes < 0 or self.edge_cloud_bytes < 0:
            raise ServiceError("chunk transfer bytes must be >= 0")


def _split_int(total: int, weights: List[float], parts: int) -> List[int]:
    """Split ``total`` into ``parts`` integers proportional to ``weights``.

    Cumulative-boundary rounding: part ``i`` gets
    ``round(total * cum_weight[i]) - round(total * cum_weight[i-1])``, so
    the parts always sum to exactly ``total`` and no part is negative.
    """
    weight_sum = sum(weights)
    if weight_sum <= 0:
        shares = [(index + 1) / parts for index in range(parts)]
    else:
        cumulative = 0.0
        shares = []
        for weight in weights:
            cumulative += weight
            shares.append(cumulative / weight_sum)
    boundaries = [int(round(total * share)) for share in shares]
    boundaries[-1] = total
    result = []
    previous = 0
    for boundary in boundaries:
        result.append(boundary - previous)
        previous = boundary
    return result


def chunk_camera_job(job, num_chunks: int) -> List[FrameChunk]:
    """Slice a planned :class:`~repro.cluster.fleet.CameraJob` into chunks.

    Frames are divided as evenly as possible (``divmod``); float costs are
    pro-rated by each chunk's frame share; integer byte totals are split on
    cumulative boundaries.  Summing any field across the returned chunks
    reproduces the job's total exactly (floats to rounding error), which the
    streaming example relies on to reconcile against the batch fleet report.
    """
    if num_chunks < 1:
        raise ServiceError(f"num_chunks must be >= 1, got {num_chunks}")
    base, remainder = divmod(job.num_frames, num_chunks)
    frame_counts = [base + (1 if index < remainder else 0)
                    for index in range(num_chunks)]
    # Frame-share weights; a zero-frame job falls back to uniform shares.
    weights = [float(count) for count in frame_counts]
    inference_counts = _split_int(job.frames_for_inference, weights, num_chunks)
    lan_bytes = _split_int(job.camera_edge_bytes, weights, num_chunks)
    wan_bytes = _split_int(job.edge_cloud_bytes, weights, num_chunks)
    total_frames = max(job.num_frames, 1)
    chunks = []
    for index in range(num_chunks):
        share = (frame_counts[index] / total_frames
                 if job.num_frames > 0 else 1.0 / num_chunks)
        chunks.append(FrameChunk(
            num_frames=frame_counts[index],
            frames_for_inference=inference_counts[index],
            edge_seconds=job.edge_seconds * share,
            cloud_seconds=job.cloud_seconds * share,
            camera_edge_bytes=lan_bytes[index],
            edge_cloud_bytes=wan_bytes[index],
        ))
    return chunks


@dataclass(frozen=True)
class TenantPolicy:
    """Admission quota and network sizing for one tenant.

    Attributes:
        name: Tenant identifier.
        max_sessions: Concurrent sessions this tenant may hold open.
        max_pending_chunks: Default per-session backpressure bound — the
            number of in-flight (pushed, not yet completed) chunks a session
            tolerates before pushes raise
            :class:`~repro.errors.BackpressureError`.
        config: Optional per-tenant :class:`SystemConfig`; when set, the
            tenant's camera uplinks are sized from its LAN bandwidth and
            latency instead of the service-wide defaults.
    """

    name: str
    max_sessions: int = 16
    max_pending_chunks: int = 8
    config: Optional[SystemConfig] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("tenant name must be non-empty")
        if self.max_sessions < 1:
            raise ServiceError("max_sessions must be >= 1")
        if self.max_pending_chunks < 1:
            raise ServiceError("max_pending_chunks must be >= 1")


@dataclass
class StreamSession:
    """Live state of one admitted camera stream.

    Attributes:
        session_id: Unique session identifier (the camera name).
        camera: Camera name.
        tenant: Owning tenant's name.
        edge_index: Edge server the session's stream is placed on.
        opened_at: Virtual time the session was admitted.
        max_pending_chunks: Current backpressure bound (retunable live).
        state: Lifecycle state.
        frames_pushed: Total frames pushed so far.
        frames_for_inference: Total inference frames pushed so far.
        chunks_pushed: Chunks accepted by ``push_frames``.
        chunks_completed: Chunks whose cloud inference finished.
        in_flight: ``chunks_pushed - chunks_completed``.
        edge_seconds_pushed: Edge compute seconds submitted so far.
        cloud_seconds_pushed: Cloud compute seconds submitted so far.
        camera_edge_bytes_pushed: LAN bytes submitted so far.
        edge_cloud_bytes_pushed: WAN bytes submitted so far.
        first_arrival: Virtual time the first chunk was pushed (``nan``
            until then).
        last_completion: Virtual time of the latest chunk completion
            (``nan`` until the first one).
        chunk_latencies: Push-to-completion latency of every finished chunk.
        closed_at: Virtual time the session reached ``CLOSED`` (``nan``
            while open or draining).
        chunks_failed: Chunks lost for good by the fault plane (always 0
            on the fault-free path).
        last_push: Virtual time of the latest accepted push (``nan``
            until the first one); feeds the stall watchdog.
        close_reason: Why the session was closed ("" while open;
            "client", "completed", "stalled", "backpressure", ...).
        parameters: Encoder parameters currently deployed on the camera
            (``None`` until the first parameter retune — the seed never
            sets them).
        parameter_version: Number of parameter retunes applied so far
            (``0`` on the seed path).
    """

    session_id: str
    camera: str
    tenant: str
    edge_index: int
    opened_at: float
    max_pending_chunks: int
    state: SessionState = SessionState.OPEN
    frames_pushed: int = 0
    frames_for_inference: int = 0
    chunks_pushed: int = 0
    chunks_completed: int = 0
    edge_seconds_pushed: float = 0.0
    cloud_seconds_pushed: float = 0.0
    camera_edge_bytes_pushed: int = 0
    edge_cloud_bytes_pushed: int = 0
    first_arrival: float = float("nan")
    last_completion: float = float("nan")
    chunk_latencies: List[float] = field(default_factory=list)
    closed_at: float = float("nan")
    chunks_failed: int = 0
    last_push: float = float("nan")
    close_reason: str = ""
    parameters: Optional[EncoderParameters] = None
    parameter_version: int = 0

    @property
    def in_flight(self) -> int:
        """Chunks pushed but neither completed nor failed out."""
        return self.chunks_pushed - self.chunks_completed - self.chunks_failed

    @property
    def is_open(self) -> bool:
        """Whether the session still accepts frame pushes."""
        return self.state is SessionState.OPEN

    def last_progress(self, default: float = 0.0) -> float:
        """Latest instant the session demonstrably made progress.

        The max of open, last accepted push and last completion times —
        the stall watchdog compares this against the clock.
        """
        progress = default
        for candidate in (self.opened_at, self.last_push,
                          self.last_completion):
            if candidate == candidate and candidate > progress:
                progress = candidate
        return progress
