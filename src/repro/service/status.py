"""Live health snapshots of the streaming service.

:meth:`StreamingService.status` folds the current state of every station,
link and session into one immutable :class:`ServiceStatus` — the payload a
``/healthz``-style endpoint would serve.  Two properties make it honest
mid-run where the batch report only had to be honest post-drain:

* utilisation uses :meth:`ServiceStation.busy_seconds_elapsed`, which
  pro-rates jobs still in service at the snapshot instant, so a station
  saturated since t=0 reads exactly 1.0 — never above — at any horizon cut;
* latency percentiles come from
  :func:`repro.cluster.fleet.latency_percentiles_of`, which yields ``nan``
  (not a crash) while a session has no completions yet.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, Tuple, Union

from ..cluster.fleet import latency_percentiles_of
from .session import SessionState


def _encode_float(value: float) -> Union[float, str]:
    """Encode one float for strict JSON (nan/inf become strings)."""
    if value != value:
        return "nan"
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


def _decode_float(value: Union[float, int, str]) -> float:
    """Invert :func:`_encode_float` (``float`` parses the sentinels)."""
    return float(value)


@dataclass(frozen=True)
class StationSnapshot:
    """One station or link at the snapshot instant.

    Attributes:
        name: Station/link name (``edge:0``, ``wan:2``, ``cloud``, ...).
        queue_depth: Jobs waiting for a worker right now.
        in_service: Jobs occupying a worker right now.
        busy_seconds: Busy time elapsed up to the snapshot (in-flight jobs
            pro-rated — see ``ServiceStation.busy_seconds_elapsed``).
        utilisation: ``busy / (capacity * elapsed horizon)``; in ``[0, 1]``.
        completed: Jobs finished so far.
    """

    name: str
    queue_depth: int
    in_service: int
    busy_seconds: float
    utilisation: float
    completed: int


@dataclass(frozen=True)
class SessionSnapshot:
    """One stream session at the snapshot instant.

    Attributes:
        session_id: Session identifier (camera name).
        tenant: Owning tenant.
        edge_index: Edge server the stream is placed on.
        state: Lifecycle state value (``open``/``draining``/``closed``).
        frames_pushed: Frames pushed so far.
        chunks_pushed: Chunks accepted so far.
        chunks_completed: Chunks finished so far.
        in_flight: Chunks currently in the pipeline.
        lan_queue_depth: Waiting transfers on the session's camera uplink.
        latency_percentiles: ``{50/95/99: seconds}`` over completed chunks
            (``nan`` before the first completion).
        parameter_version: Encoder-parameter retunes applied to the
            session so far (``0`` on the seed path).
    """

    session_id: str
    tenant: str
    edge_index: int
    state: str
    frames_pushed: int
    chunks_pushed: int
    chunks_completed: int
    in_flight: int
    lan_queue_depth: int
    latency_percentiles: Dict[int, float]
    parameter_version: int = 0


@dataclass(frozen=True)
class HealthSample:
    """One entry of the bounded health-history ring.

    Captured by :meth:`StreamingService.status` whenever the snapshot's
    combined fault/retune counters are non-empty, so breaker trips,
    failovers and retunes stay visible after the fact.  Clean runs never
    produce samples — fault-free snapshots look exactly like the seed's.

    Attributes:
        virtual_now: Scheduler clock when the sample was captured.
        counters: The flat counters at that instant.
    """

    virtual_now: float
    counters: Dict[str, int]


@dataclass(frozen=True)
class ServiceStatus:
    """Full health/metrics snapshot of a :class:`StreamingService`.

    Attributes:
        virtual_now: Scheduler clock at the snapshot.
        wall_run_seconds: Wall-clock seconds spent inside ``run`` so far.
        clock: The clock driver's ``describe()`` string.
        speedup: Real-time speedup factor (``inf`` for the virtual clock).
        clock_max_lag_seconds: Worst wall-clock lateness of any event under
            a real-time driver (``0`` for the virtual clock).
        events_processed: Events fired so far.
        pending_events: Events still queued.
        active_sessions: Sessions open or draining.
        total_sessions: Sessions ever admitted.
        sessions_rejected: Admissions refused so far.
        pushes_rejected: Frame pushes refused (backpressure) so far.
        tenants: ``tenant name -> active session count``.
        stations: Per-station snapshots (edges, WAN uplinks, cloud).
        sessions: Per-session snapshots, in admission order.
        sessions_degraded: Admissions shed to the degraded tenant tier.
        close_reasons: ``reason -> count`` histogram of session closes.
        breaker_states: ``edge index -> breaker state value`` (empty
            without a fault driver).
        fault_counters: Flat :meth:`FaultStats.as_dict` metrics (empty
            on a clean run, so fault-free snapshots look like the seed's).
        retune_counters: Adaptive-tuning counters (``retunes_applied`` /
            ``retunes_suppressed``; empty without a controller or while
            it has done nothing).
        retune_history: Versioned retune history lines from the
            controller's :class:`~repro.core.tuner.ParameterLookupTable`
            (empty without a controller).
        health_history: Bounded ring of :class:`HealthSample` entries —
            ``(virtual_now, counters)`` captured on each ``status()``
            call that had non-empty counters (empty on clean runs).
    """

    virtual_now: float
    wall_run_seconds: float
    clock: str
    speedup: float
    clock_max_lag_seconds: float
    events_processed: int
    pending_events: int
    active_sessions: int
    total_sessions: int
    sessions_rejected: int
    pushes_rejected: int
    tenants: Dict[str, int]
    stations: Tuple[StationSnapshot, ...]
    sessions: Tuple[SessionSnapshot, ...]
    sessions_degraded: int = 0
    close_reasons: Dict[str, int] = field(default_factory=dict)
    breaker_states: Dict[int, str] = field(default_factory=dict)
    fault_counters: Dict[str, int] = field(default_factory=dict)
    retune_counters: Dict[str, int] = field(default_factory=dict)
    retune_history: Tuple[str, ...] = ()
    health_history: Tuple[HealthSample, ...] = ()

    @property
    def max_utilisation(self) -> float:
        """Highest utilisation across all stations (``0`` when empty)."""
        return max((station.utilisation for station in self.stations),
                   default=0.0)

    @property
    def total_in_flight(self) -> int:
        """Chunks currently inside the pipeline, across all sessions."""
        return sum(session.in_flight for session in self.sessions)

    def station(self, name: str) -> StationSnapshot:
        """Look up one station snapshot by name."""
        for snapshot in self.stations:
            if snapshot.name == name:
                return snapshot
        raise KeyError(name)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view.

        Handy for quick inspection, but **not** a faithful wire format:
        ``json.dumps`` would silently stringify the ``int`` keys of
        ``latency_percentiles``/``breaker_states`` (breaking round-trips)
        and ``nan``/``inf`` floats are not valid JSON.  Use
        :meth:`to_json` / :meth:`from_json` for lossless serialisation.
        """
        return asdict(self)

    def to_json(self, indent: object = None) -> str:
        """Lossless strict-JSON encoding of the snapshot.

        Integer dict keys are encoded as strings and restored by
        :meth:`from_json`; ``nan``/``±inf`` floats are encoded as the
        explicit sentinels ``"nan"``/``"inf"``/``"-inf"`` (``allow_nan``
        is off, so nothing non-standard can leak through).
        """
        payload: Dict[str, object] = {
            "virtual_now": _encode_float(self.virtual_now),
            "wall_run_seconds": _encode_float(self.wall_run_seconds),
            "clock": self.clock,
            "speedup": _encode_float(self.speedup),
            "clock_max_lag_seconds": _encode_float(
                self.clock_max_lag_seconds),
            "events_processed": self.events_processed,
            "pending_events": self.pending_events,
            "active_sessions": self.active_sessions,
            "total_sessions": self.total_sessions,
            "sessions_rejected": self.sessions_rejected,
            "pushes_rejected": self.pushes_rejected,
            "tenants": dict(self.tenants),
            "stations": [{
                "name": station.name,
                "queue_depth": station.queue_depth,
                "in_service": station.in_service,
                "busy_seconds": _encode_float(station.busy_seconds),
                "utilisation": _encode_float(station.utilisation),
                "completed": station.completed,
            } for station in self.stations],
            "sessions": [{
                "session_id": session.session_id,
                "tenant": session.tenant,
                "edge_index": session.edge_index,
                "state": session.state,
                "frames_pushed": session.frames_pushed,
                "chunks_pushed": session.chunks_pushed,
                "chunks_completed": session.chunks_completed,
                "in_flight": session.in_flight,
                "lan_queue_depth": session.lan_queue_depth,
                "latency_percentiles": {
                    str(percentile): _encode_float(value)
                    for percentile, value
                    in session.latency_percentiles.items()},
                "parameter_version": session.parameter_version,
            } for session in self.sessions],
            "sessions_degraded": self.sessions_degraded,
            "close_reasons": dict(self.close_reasons),
            "breaker_states": {str(index): state for index, state
                               in self.breaker_states.items()},
            "fault_counters": dict(self.fault_counters),
            "retune_counters": dict(self.retune_counters),
            "retune_history": list(self.retune_history),
            "health_history": [{
                "virtual_now": _encode_float(sample.virtual_now),
                "counters": dict(sample.counters),
            } for sample in self.health_history],
        }
        return json.dumps(payload, indent=indent, sort_keys=True,
                          allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ServiceStatus":
        """Rebuild a snapshot from :meth:`to_json` output.

        Restores the integer percentile/breaker keys and decodes the
        nan/inf sentinels, so ``from_json(status.to_json())`` reproduces
        ``status`` field-for-field (nan compares unequal to itself, so
        compare via ``to_json`` for byte-identity).
        """
        payload = json.loads(text)
        return cls(
            virtual_now=_decode_float(payload["virtual_now"]),
            wall_run_seconds=_decode_float(payload["wall_run_seconds"]),
            clock=payload["clock"],
            speedup=_decode_float(payload["speedup"]),
            clock_max_lag_seconds=_decode_float(
                payload["clock_max_lag_seconds"]),
            events_processed=payload["events_processed"],
            pending_events=payload["pending_events"],
            active_sessions=payload["active_sessions"],
            total_sessions=payload["total_sessions"],
            sessions_rejected=payload["sessions_rejected"],
            pushes_rejected=payload["pushes_rejected"],
            tenants=dict(payload["tenants"]),
            stations=tuple(StationSnapshot(
                name=station["name"],
                queue_depth=station["queue_depth"],
                in_service=station["in_service"],
                busy_seconds=_decode_float(station["busy_seconds"]),
                utilisation=_decode_float(station["utilisation"]),
                completed=station["completed"],
            ) for station in payload["stations"]),
            sessions=tuple(SessionSnapshot(
                session_id=session["session_id"],
                tenant=session["tenant"],
                edge_index=session["edge_index"],
                state=session["state"],
                frames_pushed=session["frames_pushed"],
                chunks_pushed=session["chunks_pushed"],
                chunks_completed=session["chunks_completed"],
                in_flight=session["in_flight"],
                lan_queue_depth=session["lan_queue_depth"],
                latency_percentiles={
                    int(percentile): _decode_float(value)
                    for percentile, value
                    in session["latency_percentiles"].items()},
                parameter_version=session["parameter_version"],
            ) for session in payload["sessions"]),
            sessions_degraded=payload["sessions_degraded"],
            close_reasons=dict(payload["close_reasons"]),
            breaker_states={int(index): state for index, state
                            in payload["breaker_states"].items()},
            fault_counters=dict(payload["fault_counters"]),
            retune_counters=dict(payload["retune_counters"]),
            retune_history=tuple(payload["retune_history"]),
            health_history=tuple(HealthSample(
                virtual_now=_decode_float(sample["virtual_now"]),
                counters=dict(sample["counters"]),
            ) for sample in payload["health_history"]),
        )


def snapshot_station(name: str, station, horizon: float) -> StationSnapshot:
    """Snapshot a :class:`ServiceStation` (or anything with its surface)."""
    now = station.scheduler.now if hasattr(station, "scheduler") else horizon
    return StationSnapshot(
        name=name,
        queue_depth=station.queue_depth,
        in_service=station.in_service,
        busy_seconds=station.busy_seconds_elapsed(now),
        utilisation=station.utilisation(horizon, now=now),
        completed=station.stats.completed,
    )


def snapshot_session(session, lan_queue_depth: int) -> SessionSnapshot:
    """Snapshot one :class:`~repro.service.session.StreamSession`."""
    return SessionSnapshot(
        session_id=session.session_id,
        tenant=session.tenant,
        edge_index=session.edge_index,
        state=session.state.value if isinstance(session.state, SessionState)
        else str(session.state),
        frames_pushed=session.frames_pushed,
        chunks_pushed=session.chunks_pushed,
        chunks_completed=session.chunks_completed,
        in_flight=session.in_flight,
        lan_queue_depth=lan_queue_depth,
        latency_percentiles=latency_percentiles_of(session.chunk_latencies),
        parameter_version=session.parameter_version,
    )
