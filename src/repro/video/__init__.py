"""Video primitives: frames, event timelines, containers and synthetic scenes."""

from .events import Event, EventTimeline, LabelSet, NO_LABEL, as_label_set
from .frame import (Frame, FrameType, Resolution, RESOLUTION_1080P,
                    RESOLUTION_400P, RESOLUTION_720P)
from .raw_video import GeneratedVideo, RawVideo, VideoMetadata, VideoSource
from .scenarios import (LABELLED_SCENARIOS, SCENARIOS, UNLABELLED_SCENARIOS,
                        all_scenarios, amsterdam, coral_reef, jackson_square,
                        make_scenario, taipei, venice)
from .synthetic import (ObjectClassSpec, ObjectTrack, SceneProfile, SceneScript,
                        SyntheticScene, generate_scene_video, generate_script)
# Importing transforms also registers the built-in composed scenarios
# (BUILTIN_COMPOSED_SPECS) into SCENARIOS.
from .transforms import (BUILTIN_COMPOSED_SPECS, TRANSFORM_FACTORIES,
                         TRANSFORMS, ScenarioTransform, apply_transforms,
                         compose, compose_spec, parse_spec, register_composed)

__all__ = [
    "Event", "EventTimeline", "LabelSet", "NO_LABEL", "as_label_set",
    "Frame", "FrameType", "Resolution",
    "RESOLUTION_400P", "RESOLUTION_720P", "RESOLUTION_1080P",
    "GeneratedVideo", "RawVideo", "VideoMetadata", "VideoSource",
    "ObjectClassSpec", "ObjectTrack", "SceneProfile", "SceneScript",
    "SyntheticScene", "generate_scene_video", "generate_script",
    "SCENARIOS", "LABELLED_SCENARIOS", "UNLABELLED_SCENARIOS",
    "all_scenarios", "make_scenario",
    "jackson_square", "coral_reef", "venice", "taipei", "amsterdam",
    "ScenarioTransform", "TRANSFORMS", "TRANSFORM_FACTORIES",
    "BUILTIN_COMPOSED_SPECS", "apply_transforms", "compose", "compose_spec",
    "parse_spec", "register_composed",
]
