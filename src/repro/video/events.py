"""Semantic events and ground-truth label timelines.

The paper defines an *event* as a maximal run of consecutive frames that all
carry the same set of object labels (Section IV, the 30-second example with
three events: no label, ``car``, no label).  The offline tuner scores an
encoder configuration by whether each event starts with an I-frame, and the
evaluation measures per-frame label accuracy against these timelines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

from ..errors import ConfigurationError

LabelSet = FrozenSet[str]

#: Canonical representation of "no object in the scene".
NO_LABEL: LabelSet = frozenset()


def as_label_set(labels: Iterable[str]) -> LabelSet:
    """Normalise an iterable of labels into a canonical frozen set."""
    return frozenset(str(label) for label in labels)


@dataclass(frozen=True)
class Event:
    """A maximal run of frames sharing the same object-label set.

    Attributes:
        start_frame: Index of the first frame of the event (inclusive).
        end_frame: Index one past the last frame of the event (exclusive).
        labels: Object labels visible during the event (empty = background).
    """

    start_frame: int
    end_frame: int
    labels: LabelSet = NO_LABEL

    def __post_init__(self) -> None:
        if self.start_frame < 0:
            raise ConfigurationError(f"start_frame must be >= 0, got {self.start_frame}")
        if self.end_frame <= self.start_frame:
            raise ConfigurationError(
                f"end_frame ({self.end_frame}) must be > start_frame ({self.start_frame})")
        object.__setattr__(self, "labels", as_label_set(self.labels))

    @property
    def num_frames(self) -> int:
        """Number of frames covered by the event."""
        return self.end_frame - self.start_frame

    @property
    def is_background(self) -> bool:
        """Whether the event has no object labels."""
        return not self.labels

    def contains(self, frame_index: int) -> bool:
        """Whether ``frame_index`` falls inside the event."""
        return self.start_frame <= frame_index < self.end_frame


class EventTimeline:
    """Ground-truth labels for every frame of a video, stored as events.

    A timeline is a contiguous, non-overlapping sequence of :class:`Event`
    objects covering frames ``0 .. num_frames-1``.  Adjacent events always
    have different label sets (otherwise they would be one event).

    Args:
        events: Events sorted by ``start_frame`` and covering the video with
            no gaps or overlaps.

    Raises:
        ConfigurationError: If the events do not form a valid timeline.
    """

    def __init__(self, events: Sequence[Event]) -> None:
        events = list(events)
        if not events:
            raise ConfigurationError("EventTimeline requires at least one event")
        events.sort(key=lambda event: event.start_frame)
        if events[0].start_frame != 0:
            raise ConfigurationError("Timeline must start at frame 0")
        merged: List[Event] = []
        for event in events:
            if merged:
                previous = merged[-1]
                if event.start_frame != previous.end_frame:
                    raise ConfigurationError(
                        f"Timeline has a gap/overlap at frame {event.start_frame}")
                if event.labels == previous.labels:
                    merged[-1] = Event(previous.start_frame, event.end_frame,
                                       previous.labels)
                    continue
            merged.append(event)
        self._events: Tuple[Event, ...] = tuple(merged)
        self._num_frames = self._events[-1].end_frame
        boundaries = []
        for event in self._events:
            boundaries.append(event.start_frame)
        self._starts = boundaries

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_frame_labels(cls, frame_labels: Sequence[Iterable[str]]) -> "EventTimeline":
        """Build a timeline from per-frame label sets.

        Args:
            frame_labels: One iterable of labels per frame.

        Returns:
            The compressed event timeline.
        """
        if not frame_labels:
            raise ConfigurationError("frame_labels must not be empty")
        events: List[Event] = []
        current = as_label_set(frame_labels[0])
        start = 0
        for index in range(1, len(frame_labels)):
            labels = as_label_set(frame_labels[index])
            if labels != current:
                events.append(Event(start, index, current))
                start = index
                current = labels
        events.append(Event(start, len(frame_labels), current))
        return cls(events)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> Tuple[Event, ...]:
        """The events of the timeline, in frame order."""
        return self._events

    @property
    def num_frames(self) -> int:
        """Total number of frames covered."""
        return self._num_frames

    @property
    def num_events(self) -> int:
        """Number of (maximal) events."""
        return len(self._events)

    @property
    def event_start_frames(self) -> List[int]:
        """Indices of the first frame of every event."""
        return list(self._starts)

    @property
    def object_labels(self) -> Set[str]:
        """The union of all object labels appearing in the timeline."""
        labels: Set[str] = set()
        for event in self._events:
            labels.update(event.labels)
        return labels

    def event_at(self, frame_index: int) -> Event:
        """Return the event containing ``frame_index``."""
        if not 0 <= frame_index < self._num_frames:
            raise ConfigurationError(
                f"frame index {frame_index} outside timeline of {self._num_frames} frames")
        lo, hi = 0, len(self._events) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._starts[mid] <= frame_index:
                lo = mid
            else:
                hi = mid - 1
        return self._events[lo]

    def labels_at(self, frame_index: int) -> LabelSet:
        """Return the ground-truth label set of ``frame_index``."""
        return self.event_at(frame_index).labels

    def frame_labels(self) -> List[LabelSet]:
        """Expand the timeline into one label set per frame."""
        labels: List[LabelSet] = []
        for event in self._events:
            labels.extend([event.labels] * event.num_frames)
        return labels

    def sliced(self, start: int, stop: int) -> "EventTimeline":
        """Return the timeline restricted to frames ``[start, stop)``.

        Frame indices in the result are re-based to start at zero.
        """
        if not 0 <= start < stop <= self._num_frames:
            raise ConfigurationError(
                f"invalid slice [{start}, {stop}) of {self._num_frames} frames")
        events: List[Event] = []
        for event in self._events:
            lo = max(event.start_frame, start)
            hi = min(event.end_frame, stop)
            if lo < hi:
                events.append(Event(lo - start, hi - start, event.labels))
        return EventTimeline(events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventTimeline):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid only.
        return (f"EventTimeline(num_frames={self._num_frames}, "
                f"num_events={self.num_events}, labels={sorted(self.object_labels)})")
