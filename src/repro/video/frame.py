"""Frame and resolution primitives shared by the whole library.

A :class:`Frame` is a single uncompressed video picture: a ``uint8`` numpy
array of shape ``(height, width)`` (grayscale) or ``(height, width, 3)``
(RGB), tagged with its index in the source video and its presentation
timestamp.  Encoded pictures live in :mod:`repro.codec.bitstream` instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError


class FrameType(enum.Enum):
    """Picture type of an encoded frame.

    ``I`` frames are independently decodable key frames; ``P`` frames are
    predicted from the previous frame via motion compensation.  The paper's
    I-frame seeker keeps only ``I`` frames.  ``B`` frames are included for
    completeness of the GOP model but the encoder in this reproduction does
    not emit them (the paper's semantic encoder relies on I/P structure).
    """

    I = "I"  # noqa: E741 - the codec-standard name is a single letter.
    P = "P"
    B = "B"

    @property
    def is_key(self) -> bool:
        """Whether the frame type is an independently decodable key frame."""
        return self is FrameType.I


@dataclass(frozen=True, order=True)
class Resolution:
    """A frame resolution in pixels.

    Attributes:
        width: Horizontal size in pixels.
        height: Vertical size in pixels.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(
                f"Resolution must be positive, got {self.width}x{self.height}")

    @property
    def pixels(self) -> int:
        """Total number of pixels per frame."""
        return self.width * self.height

    @property
    def shape(self) -> Tuple[int, int]:
        """Numpy-style ``(height, width)`` shape."""
        return (self.height, self.width)

    @property
    def label(self) -> str:
        """Conventional vertical-line label such as ``'1080p'``."""
        return f"{self.height}p"

    def scaled(self, factor: float) -> "Resolution":
        """Return this resolution scaled by ``factor`` (minimum 16x16)."""
        return Resolution(max(int(round(self.width * factor)), 16),
                          max(int(round(self.height * factor)), 16))

    def __str__(self) -> str:
        return f"{self.width}x{self.height}"


#: Resolutions named in Table I of the paper.
RESOLUTION_400P = Resolution(600, 400)
RESOLUTION_720P = Resolution(1280, 720)
RESOLUTION_1080P = Resolution(1920, 1080)


@dataclass
class Frame:
    """A single uncompressed video frame.

    Attributes:
        index: Zero-based frame index in the source video.
        data: ``uint8`` array of shape ``(H, W)`` or ``(H, W, 3)``.
        timestamp: Presentation time in seconds.
        frame_type: Optional picture type assigned by an encoder or seeker.
    """

    index: int
    data: np.ndarray
    timestamp: float = 0.0
    frame_type: Optional[FrameType] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim not in (2, 3):
            raise ConfigurationError(
                f"Frame data must be 2-D or 3-D, got shape {self.data.shape}")
        if self.data.ndim == 3 and self.data.shape[2] != 3:
            raise ConfigurationError(
                f"Color frames must have 3 channels, got {self.data.shape[2]}")
        if self.data.dtype != np.uint8:
            self.data = np.clip(self.data, 0, 255).astype(np.uint8)
        if self.index < 0:
            raise ConfigurationError(f"Frame index must be >= 0, got {self.index}")

    @property
    def resolution(self) -> Resolution:
        """Resolution of the frame."""
        return Resolution(self.data.shape[1], self.data.shape[0])

    @property
    def is_color(self) -> bool:
        """Whether the frame carries three color channels."""
        return self.data.ndim == 3

    @property
    def num_pixels(self) -> int:
        """Number of pixels (independent of channel count)."""
        return self.data.shape[0] * self.data.shape[1]

    @property
    def raw_size_bytes(self) -> int:
        """Uncompressed size of the pixel payload in bytes."""
        return int(self.data.size)

    def to_grayscale(self) -> np.ndarray:
        """Return a ``float64`` grayscale (luma) plane in ``[0, 255]``.

        Uses the ITU-R BT.601 luma weights, which is what consumer codecs and
        OpenCV's default RGB-to-gray conversion use.
        """
        if self.data.ndim == 2:
            return self.data.astype(np.float64)
        weights = np.array([0.299, 0.587, 0.114])
        return self.data.astype(np.float64) @ weights

    def with_type(self, frame_type: FrameType) -> "Frame":
        """Return a shallow copy tagged with ``frame_type``."""
        return Frame(index=self.index, data=self.data, timestamp=self.timestamp,
                     frame_type=frame_type, metadata=dict(self.metadata))

    def copy(self) -> "Frame":
        """Return a deep copy (pixel data included)."""
        return Frame(index=self.index, data=self.data.copy(),
                     timestamp=self.timestamp, frame_type=self.frame_type,
                     metadata=dict(self.metadata))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid only.
        kind = self.frame_type.value if self.frame_type else "?"
        return (f"Frame(index={self.index}, {self.resolution}, type={kind}, "
                f"t={self.timestamp:.3f}s)")
