"""Scenario fuzzing: random composed profiles under cross-layer invariants.

The scenario DSL (:mod:`repro.video.transforms`) makes the space of inputs
to the pipeline combinatorial; this module is the harness that patrols it.
A :class:`ScenarioComposition` names one point of the space — a base
scenario, an ordered subset of transform presets and a schedule seed — and
:func:`check_composition` pushes it through the whole stack
(generate → encode → tune → fleet) while asserting the invariants every
layer promises for *any* input, not just the eight shipped profiles:

1. **Decoder round-trip exactness** — serialize → deserialize preserves
   the bitstream, and decoding either object yields bit-identical frames.
2. **No I-frame storms** — consecutive I-frames are never closer than
   ``effective_min_gop`` nor farther apart than ``gop_size``, whatever the
   weather does to the novelty signal.
3. **Tuner grid convergence** — the grid search returns a member of the
   grid with a sane F1 and is deterministic under replay.
4. **Fast-vs-exact agreement** — the ``precision="fast"`` analysis stays
   within the :data:`repro.contracts.FAST_CONTRACT` detections budget.
5. **Serial == parallel parity** — a fleet built from the composition
   reports bit-identically at 1 and 2 worker processes.

Failures serialize to replayable JSON repro files
(:meth:`ScenarioComposition.to_json`); ``examples/scenario_fuzz.py`` is
the CLI for both fuzzing and replaying, and ``tests/fuzz`` drives the same
checks property-style through hypothesis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.fleet import CameraJob, FleetOrchestrator
from ..codec.bitstream import EncodedVideo
from ..codec.decoder import VideoDecoder
from ..codec.encoder import VideoEncoder
from ..codec.gop import EncoderParameters
from ..contracts import FAST_CONTRACT, selection_agreement
from ..core.tuner import SemanticEncoderTuner, TuningGrid
from ..errors import DatasetError
from ..rng import make_rng
from .scenarios import SCENARIOS, make_scenario
from .synthetic import SyntheticScene
from .transforms import TRANSFORMS

#: Clip geometry of every fuzzed composition: long enough for several
#: object visits and GOP boundaries, small enough that a 25-composition
#: budget finishes in CI minutes.
FUZZ_DURATION_SECONDS = 4.0
FUZZ_RENDER_SCALE = 0.05

#: Encoder configuration the invariants run under.  The small GOP makes
#: both placement rules (forced refresh and latched scene cuts) fire many
#: times in a 120-frame clip; ``effective_min_gop`` is 5.
FUZZ_PARAMETERS = EncoderParameters(gop_size=50, scenecut_threshold=100.0)

#: The tuner grid replayed per composition (3 x 3, spanning the paper's
#: extremes at clip-appropriate GOP sizes).
FUZZ_GRID = TuningGrid(gop_sizes=(25, 50, 120),
                       scenecut_thresholds=(40.0, 150.0, 250.0))

#: Cameras in the parity fleet built from each composition.
FLEET_CAMERAS = 6

#: Parity tolerance, matching the fleet's own contract tests.
PARITY_TOLERANCE = 1e-6


def fuzz_base_names() -> Tuple[str, ...]:
    """The plain (non-composed) scenario names the fuzzer samples from."""
    return tuple(sorted(name for name in SCENARIOS if "+" not in name))


@dataclass(frozen=True)
class ScenarioComposition:
    """One fuzzed point: base scenario + transform presets + seed."""

    base: str
    transforms: Tuple[str, ...] = ()
    seed: int = 0
    duration_seconds: float = FUZZ_DURATION_SECONDS
    render_scale: float = FUZZ_RENDER_SCALE

    @property
    def spec(self) -> str:
        """The ``base+t1+t2`` composition spec string."""
        return "+".join((self.base,) + self.transforms)

    def build_profile(self):
        """Materialise the composed :class:`SceneProfile`."""
        return make_scenario(self.spec, duration_seconds=self.duration_seconds,
                             render_scale=self.render_scale, seed=self.seed)

    def describe(self) -> str:
        """Stable one-line description (used in fuzz summaries)."""
        return f"{self.spec} seed={self.seed}"

    def to_json(self) -> str:
        """Serialize to the replayable repro-file format."""
        return json.dumps({
            "base": self.base,
            "transforms": list(self.transforms),
            "seed": self.seed,
            "duration_seconds": self.duration_seconds,
            "render_scale": self.render_scale,
        }, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, data: str) -> "ScenarioComposition":
        """Parse a repro file produced by :meth:`to_json`."""
        try:
            raw = json.loads(data)
            return cls(base=raw["base"], transforms=tuple(raw["transforms"]),
                       seed=int(raw["seed"]),
                       duration_seconds=float(raw["duration_seconds"]),
                       render_scale=float(raw["render_scale"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed scenario repro file: {exc}") from exc


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant a composition broke, with a human-readable detail."""

    invariant: str
    detail: str


@dataclass
class FuzzResult:
    """Outcome of checking one composition."""

    composition: ScenarioComposition
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        """The deterministic one-line summary CI diffs across runs."""
        if self.ok:
            status = "OK"
        else:
            status = "FAIL[" + ",".join(sorted(
                {violation.invariant for violation in self.violations})) + "]"
        return f"{self.composition.describe()} {status}"


def sample_composition(rng: np.random.Generator) -> ScenarioComposition:
    """Draw one composition: a base, 0-3 distinct presets, a seed."""
    bases = fuzz_base_names()
    base = bases[int(rng.integers(len(bases)))]
    names = sorted(TRANSFORMS)
    count = int(rng.integers(0, 4))
    if count:
        picks = rng.choice(len(names), size=count, replace=False)
        transforms = tuple(names[int(index)] for index in picks)
    else:
        transforms = ()
    seed = int(rng.integers(1, 100_000))
    return ScenarioComposition(base=base, transforms=transforms, seed=seed)


# --------------------------------------------------------------------- #
# Invariant checks
# --------------------------------------------------------------------- #
def _check_roundtrip(encoded: EncodedVideo, violations: List[InvariantViolation]) -> None:
    data = encoded.serialize()
    parsed = EncodedVideo.deserialize(data)
    if parsed.frame_types() != encoded.frame_types():
        violations.append(InvariantViolation(
            "roundtrip", "frame types changed across serialize/deserialize"))
        return
    original_sizes = [frame.size_bytes for frame in encoded.frames]
    parsed_sizes = [frame.size_bytes for frame in parsed.frames]
    if parsed_sizes != original_sizes:
        violations.append(InvariantViolation(
            "roundtrip", "frame sizes changed across serialize/deserialize"))
        return
    direct = VideoDecoder().decode_video(encoded)
    reparsed = VideoDecoder().decode_video(parsed)
    for index in range(direct.metadata.num_frames):
        if not np.array_equal(direct.frame(index).data,
                              reparsed.frame(index).data):
            violations.append(InvariantViolation(
                "roundtrip",
                f"decoded frame {index} differs between the in-memory and "
                f"re-parsed bitstreams"))
            return


def _check_iframe_storm(encoded: EncodedVideo,
                        parameters: EncoderParameters,
                        violations: List[InvariantViolation]) -> None:
    keyframes = encoded.keyframe_indices
    if not keyframes or keyframes[0] != 0:
        violations.append(InvariantViolation(
            "iframe_storm", f"first frame is not an I-frame: {keyframes[:3]}"))
        return
    floor = parameters.effective_min_gop
    for previous, current in zip(keyframes, keyframes[1:]):
        gap = current - previous
        if gap < floor:
            violations.append(InvariantViolation(
                "iframe_storm",
                f"I-frames {previous} and {current} are {gap} frames apart; "
                f"min GOP is {floor}"))
            return
        if gap > parameters.gop_size:
            violations.append(InvariantViolation(
                "iframe_storm",
                f"I-frames {previous} and {current} are {gap} frames apart; "
                f"the forced-refresh bound is {parameters.gop_size}"))
            return
    tail = encoded.num_frames - 1 - keyframes[-1]
    if tail > parameters.gop_size:
        violations.append(InvariantViolation(
            "iframe_storm",
            f"{tail} trailing frames after the last I-frame exceed "
            f"gop_size={parameters.gop_size}"))


def _check_tuner(activities, timeline,
                 violations: List[InvariantViolation]) -> None:
    tuner = SemanticEncoderTuner(FUZZ_GRID, base_parameters=FUZZ_PARAMETERS)
    result = tuner.tune_from_activities(activities, timeline)
    grid_configs = FUZZ_GRID.configurations(FUZZ_PARAMETERS)
    if result.best.parameters not in grid_configs:
        violations.append(InvariantViolation(
            "tuner", f"best configuration {result.best.parameters.describe()} "
                     f"is not a member of the grid"))
    if not 0.0 <= result.best.score.f1 <= 1.0:
        violations.append(InvariantViolation(
            "tuner", f"best F1 {result.best.score.f1} outside [0, 1]"))
    if len(result.results) != FUZZ_GRID.num_configurations:
        violations.append(InvariantViolation(
            "tuner", f"grid search returned {len(result.results)} results "
                     f"for {FUZZ_GRID.num_configurations} configurations"))
    replay = SemanticEncoderTuner(
        FUZZ_GRID, base_parameters=FUZZ_PARAMETERS).tune_from_activities(
            activities, timeline)
    if (replay.best.parameters != result.best.parameters
            or replay.best.score.f1 != result.best.score.f1):
        violations.append(InvariantViolation(
            "tuner", "replaying the identical grid search changed the "
                     "winner — the tie-break contract is broken"))


def _check_fast_agreement(video, encoded: EncodedVideo,
                          violations: List[InvariantViolation]) -> None:
    fast_encoder = VideoEncoder(FUZZ_PARAMETERS, precision="fast")
    fast_types = fast_encoder.place_frame_types(fast_encoder.analyze(video))
    from ..video.frame import FrameType
    fast_keys = [index for index, frame_type in enumerate(fast_types)
                 if frame_type is FrameType.I]
    agreement = selection_agreement(encoded.keyframe_indices, fast_keys)
    budget = FAST_CONTRACT.detections.min_agreement
    if agreement < budget:
        violations.append(InvariantViolation(
            "fast_vs_exact",
            f"fast/exact keyframe agreement {agreement:.4f} below the "
            f"contract budget {budget}"))


def _fleet_jobs(composition: ScenarioComposition,
                encoded: EncodedVideo) -> List[CameraJob]:
    """Derive a deterministic parity fleet from the encoded composition."""
    total_bytes = sum(frame.size_bytes for frame in encoded.frames)
    inference_frames = max(len(encoded.keyframe_indices), 1)
    return [
        CameraJob(camera=f"{composition.spec}#{index}",
                  video=composition.spec,
                  num_frames=encoded.num_frames,
                  frames_for_inference=inference_frames + index,
                  edge_seconds=0.2 + 0.03 * index,
                  cloud_seconds=0.1 + 0.02 * index,
                  camera_edge_bytes=total_bytes + 1000 * index,
                  edge_cloud_bytes=max(total_bytes // 8, 1) + 500 * index)
        for index in range(FLEET_CAMERAS)
    ]


def _check_fleet_parity(composition: ScenarioComposition,
                        encoded: EncodedVideo,
                        violations: List[InvariantViolation]) -> None:
    jobs = _fleet_jobs(composition, encoded)
    serial = FleetOrchestrator(jobs, num_edge_servers=2,
                               fleet_workers=1).run()
    parallel = FleetOrchestrator(jobs, num_edge_servers=2,
                                 fleet_workers=2).run()
    mismatches = serial.parity_mismatches(parallel, PARITY_TOLERANCE)
    if mismatches:
        violations.append(InvariantViolation(
            "fleet_parity", "; ".join(mismatches)))


def check_composition(composition: ScenarioComposition, *,
                      fleet: bool = True) -> FuzzResult:
    """Run the full invariant set over one composition.

    Args:
        composition: The fuzzed point to check.
        fleet: Include the (multiprocess) serial==parallel parity check;
            disable only where process pools are unavailable.

    Returns:
        A :class:`FuzzResult`; ``result.ok`` means every invariant held.
    """
    violations: List[InvariantViolation] = []
    try:
        profile = composition.build_profile()
        scene = SyntheticScene(profile)
        video = scene.video().materialise()
        encoder = VideoEncoder(FUZZ_PARAMETERS)
        encoded = encoder.encode(video, materialise_payload=True)
        _check_roundtrip(encoded, violations)
        _check_iframe_storm(encoded, FUZZ_PARAMETERS, violations)
        _check_tuner(encoder.analyze(video), scene.script.timeline(),
                     violations)
        _check_fast_agreement(video, encoded, violations)
        if fleet:
            _check_fleet_parity(composition, encoded, violations)
    except Exception as exc:  # noqa: BLE001 - a crash IS a finding
        violations.append(InvariantViolation(
            "crash", f"{type(exc).__name__}: {exc}"))
    return FuzzResult(composition=composition, violations=violations)


@dataclass
class FuzzRun:
    """Outcome of a full fuzz budget."""

    root_seed: int
    results: List[FuzzResult]
    repro_paths: List[str] = field(default_factory=list)

    @property
    def failures(self) -> List[FuzzResult]:
        return [result for result in self.results if not result.ok]

    def lines(self) -> List[str]:
        """The deterministic document CI diffs across same-seed runs."""
        lines = [f"# scenario fuzz: budget={len(self.results)} "
                 f"seed={self.root_seed}"]
        for index, result in enumerate(self.results):
            lines.append(f"{index:03d} {result.summary()}")
        lines.append(f"# {len(self.failures)} failure(s) "
                     f"/ {len(self.results)} compositions")
        return lines


def run_fuzz(budget: int, root_seed: int, *, out_dir: Optional[str] = None,
             fleet: bool = True) -> FuzzRun:
    """Check ``budget`` sampled compositions; write repros for failures.

    Args:
        budget: Number of compositions to sample and check.
        root_seed: Root seed; the whole run is a pure function of it.
        out_dir: Directory for ``repro_NNN.json`` files (failures only).
        fleet: Forwarded to :func:`check_composition`.

    Returns:
        The :class:`FuzzRun` (summary lines, per-composition results,
        paths of any repro files written).
    """
    results: List[FuzzResult] = []
    repro_paths: List[str] = []
    for index in range(budget):
        rng = make_rng(root_seed, "scenario-fuzz", str(index))
        composition = sample_composition(rng)
        result = check_composition(composition, fleet=fleet)
        results.append(result)
        if not result.ok and out_dir is not None:
            import os
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"repro_{index:03d}.json")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(composition.to_json() + "\n")
            repro_paths.append(path)
    return FuzzRun(root_seed=root_seed, results=results,
                   repro_paths=repro_paths)
