"""Uncompressed video containers.

A :class:`RawVideo` is a sequence of :class:`~repro.video.frame.Frame`
objects plus :class:`VideoMetadata`.  Two flavours are provided:

* :class:`RawVideo` — frames materialised in memory (used by tests and short
  clips).
* :class:`FrameSource` protocol / :class:`GeneratedVideo` — frames produced
  lazily by a callable, so experiment-scale videos never hold every frame in
  memory at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .events import EventTimeline
from .frame import Frame, Resolution


@dataclass(frozen=True)
class VideoMetadata:
    """Descriptive metadata of a video.

    Attributes:
        name: Human-readable identifier (dataset or camera name).
        resolution: Frame resolution.
        fps: Frames per second.
        num_frames: Total number of frames.
    """

    name: str
    resolution: Resolution
    fps: float
    num_frames: int
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {self.fps}")
        if self.num_frames <= 0:
            raise ConfigurationError(f"num_frames must be positive, got {self.num_frames}")

    @property
    def duration_seconds(self) -> float:
        """Video duration in seconds."""
        return self.num_frames / self.fps

    @property
    def raw_size_bytes(self) -> int:
        """Size of the uncompressed RGB video in bytes."""
        return self.num_frames * self.resolution.pixels * 3

    def timestamp_of(self, frame_index: int) -> float:
        """Presentation timestamp of ``frame_index`` in seconds."""
        return frame_index / self.fps


class VideoSource:
    """Abstract base for anything that can stream frames in index order."""

    metadata: VideoMetadata

    def frames(self) -> Iterator[Frame]:
        """Yield frames in presentation order."""
        raise NotImplementedError

    def frame(self, index: int) -> Frame:
        """Random access to a single frame (may be slow for generated video)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Frame]:
        return self.frames()

    def __len__(self) -> int:
        return self.metadata.num_frames


class RawVideo(VideoSource):
    """A fully materialised uncompressed video.

    Args:
        metadata: Video metadata; ``num_frames`` must match ``frames``.
        frames: Frames in presentation order.
        timeline: Optional ground-truth event timeline.
    """

    def __init__(self, metadata: VideoMetadata, frames: Sequence[Frame],
                 timeline: Optional[EventTimeline] = None) -> None:
        frames = list(frames)
        if len(frames) != metadata.num_frames:
            raise ConfigurationError(
                f"metadata says {metadata.num_frames} frames but got {len(frames)}")
        for position, frame in enumerate(frames):
            if frame.index != position:
                raise ConfigurationError(
                    f"frame at position {position} has index {frame.index}")
        if timeline is not None and timeline.num_frames != metadata.num_frames:
            raise ConfigurationError(
                "timeline length does not match the number of frames")
        self.metadata = metadata
        self._frames = frames
        self.timeline = timeline

    @classmethod
    def from_arrays(cls, name: str, arrays: Sequence[np.ndarray], fps: float = 30.0,
                    timeline: Optional[EventTimeline] = None) -> "RawVideo":
        """Build a video from raw numpy arrays.

        Args:
            name: Video name.
            arrays: Per-frame pixel arrays, all with the same shape.
            fps: Frame rate.
            timeline: Optional ground-truth timeline.
        """
        if not arrays:
            raise ConfigurationError("arrays must not be empty")
        frames = [Frame(index=i, data=np.asarray(a), timestamp=i / fps)
                  for i, a in enumerate(arrays)]
        first = frames[0].resolution
        for frame in frames:
            if frame.resolution != first:
                raise ConfigurationError("all frames must share one resolution")
        metadata = VideoMetadata(name=name, resolution=first, fps=fps,
                                 num_frames=len(frames))
        return cls(metadata, frames, timeline)

    def frames(self) -> Iterator[Frame]:
        return iter(self._frames)

    def frame(self, index: int) -> Frame:
        if not 0 <= index < len(self._frames):
            raise ConfigurationError(
                f"frame index {index} out of range [0, {len(self._frames)})")
        return self._frames[index]

    def as_arrays(self) -> List[np.ndarray]:
        """Return the underlying pixel arrays (no copy)."""
        return [frame.data for frame in self._frames]

    def sliced(self, start: int, stop: int, name: Optional[str] = None) -> "RawVideo":
        """Return a sub-video over frames ``[start, stop)`` (re-indexed)."""
        if not 0 <= start < stop <= len(self._frames):
            raise ConfigurationError(f"invalid slice [{start}, {stop})")
        frames = [Frame(index=i, data=f.data, timestamp=i / self.metadata.fps,
                        frame_type=f.frame_type, metadata=dict(f.metadata))
                  for i, f in enumerate(self._frames[start:stop])]
        metadata = VideoMetadata(name=name or f"{self.metadata.name}[{start}:{stop}]",
                                 resolution=self.metadata.resolution,
                                 fps=self.metadata.fps, num_frames=len(frames),
                                 extra=dict(self.metadata.extra))
        timeline = self.timeline.sliced(start, stop) if self.timeline else None
        return RawVideo(metadata, frames, timeline)


class GeneratedVideo(VideoSource):
    """A lazily generated video backed by a frame-producing callable.

    Args:
        metadata: Video metadata.
        frame_fn: Callable mapping a frame index to a pixel array.
        timeline: Optional ground-truth event timeline.
        cache_last: Keep the most recently generated frame cached, which makes
            the common encode pattern (sequential access with one-frame
            lookback) cheap.
    """

    def __init__(self, metadata: VideoMetadata,
                 frame_fn: Callable[[int], np.ndarray],
                 timeline: Optional[EventTimeline] = None,
                 cache_last: bool = True) -> None:
        if timeline is not None and timeline.num_frames != metadata.num_frames:
            raise ConfigurationError(
                "timeline length does not match the number of frames")
        self.metadata = metadata
        self.timeline = timeline
        self._frame_fn = frame_fn
        self._cache_last = cache_last
        self._cached: Optional[Frame] = None

    def frame(self, index: int) -> Frame:
        if not 0 <= index < self.metadata.num_frames:
            raise ConfigurationError(
                f"frame index {index} out of range [0, {self.metadata.num_frames})")
        if self._cached is not None and self._cached.index == index:
            return self._cached
        frame = Frame(index=index, data=self._frame_fn(index),
                      timestamp=self.metadata.timestamp_of(index))
        if self._cache_last:
            self._cached = frame
        return frame

    def frames(self) -> Iterator[Frame]:
        for index in range(self.metadata.num_frames):
            yield self.frame(index)

    def materialise(self) -> RawVideo:
        """Render every frame into memory and return a :class:`RawVideo`."""
        return RawVideo(self.metadata, list(self.frames()), self.timeline)
