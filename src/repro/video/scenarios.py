"""Scenario profiles mirroring the paper's five datasets (Table I).

Each function returns a :class:`~repro.video.synthetic.SceneProfile` whose
event structure mirrors the description in Table I of the paper:

========================  ===================  ============  ==========================================
Dataset                   Objects              Resolution    Character
========================  ===================  ============  ==========================================
Jackson square            car, bus, truck      600x400       close-up vehicles, large apparent size
Coral reef                person               1280x720      people in an aquarium, small apparent size
Venice                    boat                 1920x1080     boats shot from far away, smallest objects
Taipei                    car, person          1920x1080     busy square, frequent events, unlabelled
Amsterdam                 car, person          1280x720      road intersection, unlabelled
========================  ===================  ============  ==========================================

The paper uses 8-hour videos for the labelled datasets and 4-hour videos for
the unlabelled ones.  Rendering hours of video is unnecessary for
reproducing the evaluation's *shape* — what matters is the number of events
and the per-event frame counts — so every constructor takes a
``duration_seconds`` and a ``render_scale``; the defaults give minutes-long
clips at a reduced resolution that keep the same relative object sizes and
event rates.  The dataset registry (:mod:`repro.datasets.registry`) records
the paper's nominal resolution and duration for cost modelling.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import DatasetError
from .frame import RESOLUTION_1080P, RESOLUTION_400P, RESOLUTION_720P
from .synthetic import ObjectClassSpec, SceneProfile

#: Default rendered duration of a scenario clip, in seconds.
DEFAULT_DURATION_SECONDS = 120.0

#: Default scale factor applied to the paper's nominal resolution when
#: rendering pixels.  Object sizes are specified relative to the frame, so
#: the event/motion structure is unaffected.
DEFAULT_RENDER_SCALE = 0.16


def jackson_square(duration_seconds: float = DEFAULT_DURATION_SECONDS,
                   render_scale: float = DEFAULT_RENDER_SCALE,
                   seed: int = 1) -> SceneProfile:
    """Jackson town square: close-up cars, buses and trucks (600x400)."""
    classes = (
        (ObjectClassSpec("car", relative_height=0.30, aspect_ratio=2.2,
                         speed_fraction=0.22, brightness_delta=80.0), 0.7),
        (ObjectClassSpec("bus", relative_height=0.42, aspect_ratio=2.8,
                         speed_fraction=0.15, brightness_delta=95.0), 0.15),
        (ObjectClassSpec("truck", relative_height=0.38, aspect_ratio=2.5,
                         speed_fraction=0.17, brightness_delta=90.0), 0.15),
    )
    profile = SceneProfile(
        name="jackson_square",
        resolution=RESOLUTION_400P,
        fps=30.0,
        duration_seconds=duration_seconds,
        object_classes=classes,
        mean_gap_seconds=7.0,
        mean_dwell_seconds=5.0,
        noise_std=2.0,
        background_detail=22.0,
        illumination_drift=3.0,
        max_concurrent_objects=1,
        seed=seed,
    )
    return profile.scaled(render_scale)


def coral_reef(duration_seconds: float = DEFAULT_DURATION_SECONDS,
               render_scale: float = DEFAULT_RENDER_SCALE,
               seed: int = 2) -> SceneProfile:
    """Coral reef aquarium: people watching the tank, small apparent size (720p)."""
    classes = (
        (ObjectClassSpec("person", relative_height=0.12, aspect_ratio=0.45,
                         speed_fraction=0.12, brightness_delta=55.0,
                         shape="ellipse"), 1.0),
    )
    profile = SceneProfile(
        name="coral_reef",
        resolution=RESOLUTION_720P,
        fps=30.0,
        duration_seconds=duration_seconds,
        object_classes=classes,
        mean_gap_seconds=5.0,
        mean_dwell_seconds=7.0,
        noise_std=2.5,
        background_detail=30.0,
        illumination_drift=4.0,
        max_concurrent_objects=1,
        seed=seed,
    )
    return profile.scaled(render_scale)


def venice(duration_seconds: float = DEFAULT_DURATION_SECONDS,
           render_scale: float = DEFAULT_RENDER_SCALE,
           seed: int = 3) -> SceneProfile:
    """Venice lagoon: boats shot from a long distance, smallest objects (1080p)."""
    classes = (
        (ObjectClassSpec("boat", relative_height=0.06, aspect_ratio=3.0,
                         speed_fraction=0.08, brightness_delta=45.0), 1.0),
    )
    profile = SceneProfile(
        name="venice",
        resolution=RESOLUTION_1080P,
        fps=30.0,
        duration_seconds=duration_seconds,
        object_classes=classes,
        mean_gap_seconds=12.0,
        mean_dwell_seconds=9.0,
        noise_std=2.0,
        background_detail=18.0,
        illumination_drift=5.0,
        max_concurrent_objects=1,
        seed=seed,
    )
    return profile.scaled(render_scale)


def taipei(duration_seconds: float = DEFAULT_DURATION_SECONDS,
           render_scale: float = DEFAULT_RENDER_SCALE,
           seed: int = 4) -> SceneProfile:
    """Taipei public square: mixed cars and pedestrians, frequent events (1080p)."""
    classes = (
        (ObjectClassSpec("car", relative_height=0.18, aspect_ratio=2.2,
                         speed_fraction=0.25, brightness_delta=70.0), 0.6),
        (ObjectClassSpec("person", relative_height=0.10, aspect_ratio=0.45,
                         speed_fraction=0.10, brightness_delta=50.0,
                         shape="ellipse"), 0.4),
    )
    profile = SceneProfile(
        name="taipei",
        resolution=RESOLUTION_1080P,
        fps=30.0,
        duration_seconds=duration_seconds,
        object_classes=classes,
        mean_gap_seconds=4.0,
        mean_dwell_seconds=5.0,
        noise_std=2.5,
        background_detail=26.0,
        illumination_drift=3.0,
        max_concurrent_objects=2,
        seed=seed,
    )
    return profile.scaled(render_scale)


def amsterdam(duration_seconds: float = DEFAULT_DURATION_SECONDS,
              render_scale: float = DEFAULT_RENDER_SCALE,
              seed: int = 5) -> SceneProfile:
    """Amsterdam road intersection: cars and pedestrians (720p)."""
    classes = (
        (ObjectClassSpec("car", relative_height=0.20, aspect_ratio=2.3,
                         speed_fraction=0.28, brightness_delta=75.0), 0.7),
        (ObjectClassSpec("person", relative_height=0.11, aspect_ratio=0.45,
                         speed_fraction=0.11, brightness_delta=50.0,
                         shape="ellipse"), 0.3),
    )
    profile = SceneProfile(
        name="amsterdam",
        resolution=RESOLUTION_720P,
        fps=30.0,
        duration_seconds=duration_seconds,
        object_classes=classes,
        mean_gap_seconds=6.0,
        mean_dwell_seconds=4.0,
        noise_std=2.0,
        background_detail=24.0,
        illumination_drift=3.5,
        max_concurrent_objects=2,
        seed=seed,
    )
    return profile.scaled(render_scale)


def highway(duration_seconds: float = DEFAULT_DURATION_SECONDS,
            render_scale: float = DEFAULT_RENDER_SCALE,
            seed: int = 6) -> SceneProfile:
    """Highway overpass: fast cars and trucks in a steady stream (720p).

    Not part of the paper's Table I — added for the fleet-scaling workload,
    where a high event rate stresses the edge tier harder than the square
    and intersection feeds.
    """
    classes = (
        (ObjectClassSpec("car", relative_height=0.16, aspect_ratio=2.4,
                         speed_fraction=0.40, brightness_delta=72.0), 0.8),
        (ObjectClassSpec("truck", relative_height=0.24, aspect_ratio=2.9,
                         speed_fraction=0.32, brightness_delta=88.0), 0.2),
    )
    profile = SceneProfile(
        name="highway",
        resolution=RESOLUTION_720P,
        fps=30.0,
        duration_seconds=duration_seconds,
        object_classes=classes,
        mean_gap_seconds=3.0,
        mean_dwell_seconds=3.0,
        noise_std=2.5,
        background_detail=20.0,
        illumination_drift=2.5,
        max_concurrent_objects=2,
        seed=seed,
    )
    return profile.scaled(render_scale)


def night(duration_seconds: float = DEFAULT_DURATION_SECONDS,
          render_scale: float = DEFAULT_RENDER_SCALE,
          seed: int = 7) -> SceneProfile:
    """Night-time intersection under a flickering street lamp (720p).

    Not part of the paper's Table I — added as the adversarial profile for
    scene-cut detection: the scene is dark (low base brightness), the
    sensor is noisy, and a failing lamp makes the *whole frame's*
    brightness jump between consecutive frames.  Motion compensation
    cannot explain a global luma step, so a naive novelty measure would
    fire on every flicker; the encoder's novel-pixel threshold has to
    separate the sub-threshold flicker from genuine arrivals of the
    bright-headlight cars and dim pedestrians.  The flicker amplitude is
    deliberately *below* the novelty threshold while headlights are far
    above it.
    """
    classes = (
        (ObjectClassSpec("car", relative_height=0.20, aspect_ratio=2.3,
                         speed_fraction=0.24, brightness_delta=95.0), 0.6),
        (ObjectClassSpec("person", relative_height=0.11, aspect_ratio=0.45,
                         speed_fraction=0.10, brightness_delta=40.0,
                         shape="ellipse"), 0.4),
    )
    profile = SceneProfile(
        name="night",
        resolution=RESOLUTION_720P,
        fps=30.0,
        duration_seconds=duration_seconds,
        object_classes=classes,
        mean_gap_seconds=6.0,
        mean_dwell_seconds=4.0,
        noise_std=3.5,
        background_detail=16.0,
        texture_detail=20.0,
        illumination_drift=6.0,
        base_brightness=45.0,
        flicker_amplitude=9.0,
        max_concurrent_objects=2,
        seed=seed,
    )
    return profile.scaled(render_scale)


def drifting(duration_seconds: float = DEFAULT_DURATION_SECONDS,
             render_scale: float = DEFAULT_RENDER_SCALE,
             seed: int = 8) -> SceneProfile:
    """Highway feed drifting into night over the course of the clip (720p).

    Not part of the paper's Table I — this is the regime-change workload
    for the online adaptive tuner (:mod:`repro.adapt`).  It starts as the
    daylight ``highway`` stream and morphs, linearly over the clip, into
    the adversarial ``night`` regime: the global brightness falls
    110 → 45, a street-lamp flicker fades in to the night scenario's
    amplitude, sensor noise rises as the virtual gain cranks up, and —
    decisive for the tuner — the vehicles' luma contrast fades towards
    the background, so the scenecut threshold that detects every arrival
    at noon silently misses the dim ones at dusk.  A tune frozen on the
    opening minutes therefore degrades mid-clip, which is exactly the
    drift the detectors must catch and the re-tune must repair.
    """
    classes = (
        (ObjectClassSpec("car", relative_height=0.16, aspect_ratio=2.4,
                         speed_fraction=0.40, brightness_delta=72.0), 0.8),
        (ObjectClassSpec("truck", relative_height=0.24, aspect_ratio=2.9,
                         speed_fraction=0.32, brightness_delta=88.0), 0.2),
    )
    profile = SceneProfile(
        name="drifting",
        resolution=RESOLUTION_720P,
        fps=30.0,
        duration_seconds=duration_seconds,
        object_classes=classes,
        mean_gap_seconds=3.0,
        mean_dwell_seconds=3.0,
        noise_std=2.0,
        background_detail=20.0,
        illumination_drift=2.5,
        base_brightness=110.0,
        brightness_ramp=-65.0,
        flicker_ramp=9.0,
        noise_ramp=1.5,
        object_contrast_ramp=-0.55,
        max_concurrent_objects=2,
        seed=seed,
    )
    return profile.scaled(render_scale)


#: Mapping from scenario name to constructor.
SCENARIOS = {
    "jackson_square": jackson_square,
    "coral_reef": coral_reef,
    "venice": venice,
    "taipei": taipei,
    "amsterdam": amsterdam,
    "highway": highway,
    "night": night,
    "drifting": drifting,
}

#: Scenarios for which the paper has ground-truth object labels.
LABELLED_SCENARIOS = ("jackson_square", "coral_reef", "venice")

#: Scenarios the paper uses only in the end-to-end evaluation.
UNLABELLED_SCENARIOS = ("taipei", "amsterdam")


def make_scenario(name: str, duration_seconds: float = DEFAULT_DURATION_SECONDS,
                  render_scale: float = DEFAULT_RENDER_SCALE,
                  seed: Optional[int] = None) -> SceneProfile:
    """Build a scenario profile by name or composition spec.

    Args:
        name: One of :data:`SCENARIOS`, or a composition spec such as
            ``"highway+rain+night_cycle"`` (base scenario plus transform
            presets from :mod:`repro.video.transforms`).
        duration_seconds: Rendered clip length.
        render_scale: Resolution scale factor applied to the paper's nominal
            resolution.
        seed: Override the scenario's default schedule seed.  The override
            is passed *into* the constructor, so it governs schedule
            generation and every derived RNG stream — not just the stored
            ``profile.seed``.

    Returns:
        The configured :class:`SceneProfile`.

    Raises:
        DatasetError: If ``name`` is not a known scenario or a valid spec.
    """
    try:
        constructor = SCENARIOS[name]
    except KeyError as exc:
        if "+" in name:
            # Unregistered composition specs are built on the fly; the
            # import is deferred because transforms composes *on top of*
            # this module.
            from .transforms import compose_spec
            constructor = compose_spec(name)
        else:
            raise DatasetError(
                f"unknown scenario {name!r}; expected one of "
                f"{sorted(SCENARIOS)}") from exc
    if seed is None:
        return constructor(duration_seconds=duration_seconds,
                           render_scale=render_scale)
    return constructor(duration_seconds=duration_seconds,
                       render_scale=render_scale, seed=seed)


def all_scenarios(duration_seconds: float = DEFAULT_DURATION_SECONDS,
                  render_scale: float = DEFAULT_RENDER_SCALE) -> Dict[str, SceneProfile]:
    """Build every scenario profile."""
    return {name: make_scenario(name, duration_seconds, render_scale)
            for name in SCENARIOS}
