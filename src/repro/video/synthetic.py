"""Procedural surveillance-scene generator.

The paper evaluates SiEVE on real surveillance feeds (Table I).  Those videos
are not redistributable and cannot be downloaded in this offline environment,
so this module generates *synthetic surveillance scenes* that preserve the
properties the evaluation actually depends on:

* a static background viewed by a fixed camera,
* objects of a given class entering the scene, dwelling while moving across
  it, and leaving — producing the paper's notion of *events* (maximal runs of
  frames with the same label set),
* object apparent size controlled per scenario (close-up cars vs. distant
  boats), which determines how much motion an entering object causes and
  therefore which scenecut threshold detects it,
* sensor noise and slow illumination drift, which is what limits naive
  pixel-difference baselines such as MSE.

Every frame is a deterministic function of ``(profile, frame_index)`` so
videos can be streamed lazily without keeping all frames in memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import make_rng
from .events import EventTimeline
from .frame import Resolution
from .raw_video import GeneratedVideo, VideoMetadata


@dataclass(frozen=True)
class ObjectClassSpec:
    """Appearance and motion model of one object class in a scene.

    Attributes:
        label: Object label reported by the ground truth (e.g. ``"car"``).
        relative_height: Object bounding-box height as a fraction of frame
            height.  Close-up objects (Jackson square cars) are large
            (~0.25+); distant objects (Venice boats) are small (~0.05).
        aspect_ratio: Bounding-box width divided by height.
        speed_fraction: Fraction of the frame width the object traverses per
            second of video.
        brightness_delta: Luma offset of the object relative to the
            background (positive = brighter).  Larger objects with larger
            deltas create more inter-frame motion cost.
        shape: ``"rectangle"`` or ``"ellipse"``.
    """

    label: str
    relative_height: float
    aspect_ratio: float = 2.0
    speed_fraction: float = 0.25
    brightness_delta: float = 70.0
    shape: str = "rectangle"

    def __post_init__(self) -> None:
        if not 0.0 < self.relative_height <= 1.0:
            raise ConfigurationError(
                f"relative_height must be in (0, 1], got {self.relative_height}")
        if self.aspect_ratio <= 0:
            raise ConfigurationError("aspect_ratio must be positive")
        if self.speed_fraction <= 0:
            raise ConfigurationError("speed_fraction must be positive")
        if self.shape not in ("rectangle", "ellipse"):
            raise ConfigurationError(f"unknown shape {self.shape!r}")


@dataclass(frozen=True)
class SceneProfile:
    """Full description of a synthetic surveillance scene.

    Attributes:
        name: Scene / camera name.
        resolution: Rendered frame resolution.
        fps: Frame rate.
        duration_seconds: Length of the generated video.
        object_classes: Object classes that may appear, with sampling weights.
        mean_gap_seconds: Mean idle time between the end of one object's
            visit and the start of the next.
        mean_dwell_seconds: Mean time an object stays in the scene.
        noise_std: Standard deviation of per-frame sensor noise (luma units).
        background_detail: Amplitude of the smooth (low-frequency) background
            structure: road markings, water gradients, large shadows.
        texture_detail: Amplitude of the static high-frequency background
            texture (asphalt grain, ripples, foliage).  This texture is what
            makes occlusion/disocclusion at object boundaries unpredictable
            for a motion-compensating encoder — the physical effect real
            scene-cut detection keys on — so it must be comfortably larger
            than the sensor noise.
        illumination_drift: Peak-to-peak amplitude of a slow global
            brightness oscillation (simulates clouds / daylight changes).
        base_brightness: Mean luma level of the background's top edge
            (``110`` reproduces the daylight scenes; low values give
            night-time footage).
        flicker_amplitude: Peak amplitude of a *fast* per-frame global
            brightness jitter (failing street lamps, rolling-shutter
            beating).  Unlike the slow drift it changes between
            consecutive frames, so motion compensation cannot explain it
            away — the stress case for scene-cut detection.  ``0``
            (default) renders bit-identical to the pre-flicker generator.
        brightness_ramp: Luma added to the global illumination, scaled
            linearly from ``0`` at the first frame to the full value at
            the last — a negative ramp morphs a daylight scene into
            night over the clip.  ``0`` (default) is bit-identical.
        flicker_ramp: Added to ``flicker_amplitude`` with the same linear
            schedule (street lamps that degrade as night falls).  ``0``
            (default) is bit-identical.
        noise_ramp: Added to ``noise_std`` with the same linear schedule
            (sensor gain cranking up in low light).  ``0`` (default) is
            bit-identical.
        object_contrast_ramp: Multiplies every object's luma delta by
            ``1 + ramp * progress`` — a negative ramp fades objects into
            the background, which is what genuinely shifts the optimal
            scenecut threshold mid-clip.  ``0`` (default) is
            bit-identical.
        max_concurrent_objects: Upper bound on simultaneously visible objects.
        seed: Root seed for the event schedule and appearance sampling.
    """

    name: str
    resolution: Resolution
    fps: float
    duration_seconds: float
    object_classes: Tuple[Tuple[ObjectClassSpec, float], ...]
    mean_gap_seconds: float = 8.0
    mean_dwell_seconds: float = 6.0
    noise_std: float = 2.0
    background_detail: float = 25.0
    texture_detail: float = 28.0
    illumination_drift: float = 3.0
    base_brightness: float = 110.0
    flicker_amplitude: float = 0.0
    brightness_ramp: float = 0.0
    flicker_ramp: float = 0.0
    noise_ramp: float = 0.0
    object_contrast_ramp: float = 0.0
    max_concurrent_objects: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fps <= 0 or self.duration_seconds <= 0:
            raise ConfigurationError("fps and duration_seconds must be positive")
        if not 0.0 <= self.base_brightness <= 255.0:
            raise ConfigurationError(
                f"base_brightness must be in [0, 255], got {self.base_brightness}")
        if self.flicker_amplitude < 0:
            raise ConfigurationError(
                f"flicker_amplitude must be >= 0, got {self.flicker_amplitude}")
        if not 0.0 <= self.base_brightness + self.brightness_ramp <= 255.0:
            raise ConfigurationError(
                "base_brightness + brightness_ramp must stay in [0, 255], "
                f"got {self.base_brightness + self.brightness_ramp}")
        if self.flicker_amplitude + self.flicker_ramp < 0:
            raise ConfigurationError(
                "flicker_amplitude + flicker_ramp must be >= 0")
        if self.noise_std + self.noise_ramp < 0:
            raise ConfigurationError("noise_std + noise_ramp must be >= 0")
        if 1.0 + self.object_contrast_ramp < 0:
            raise ConfigurationError(
                "object_contrast_ramp must be >= -1 (contrast cannot flip)")
        if not self.object_classes:
            raise ConfigurationError("object_classes must not be empty")
        if self.mean_gap_seconds <= 0 or self.mean_dwell_seconds <= 0:
            raise ConfigurationError("mean gap/dwell must be positive")
        if self.max_concurrent_objects < 1:
            raise ConfigurationError("max_concurrent_objects must be >= 1")
        total_weight = sum(weight for _, weight in self.object_classes)
        if total_weight <= 0:
            raise ConfigurationError("object class weights must sum to a positive value")

    @property
    def num_frames(self) -> int:
        """Number of frames in the generated video."""
        return max(int(round(self.duration_seconds * self.fps)), 1)

    def ramp_progress(self, frame_index: int) -> float:
        """Linear drift-ramp progress at ``frame_index`` (``0`` → ``1``)."""
        return frame_index / max(self.num_frames - 1, 1)

    def scaled(self, factor: float, name: Optional[str] = None) -> "SceneProfile":
        """Return a copy rendered at ``factor`` times the resolution.

        Used to run experiment-scale videos at a reduced pixel count while
        keeping the event structure identical (object sizes are relative).
        """
        return replace(self, name=name or self.name,
                       resolution=self.resolution.scaled(factor))

    def with_duration(self, duration_seconds: float) -> "SceneProfile":
        """Return a copy with a different duration."""
        return replace(self, duration_seconds=duration_seconds)

    def with_seed(self, seed: int) -> "SceneProfile":
        """Return a copy with a different schedule seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class ObjectTrack:
    """A single object's visit to the scene.

    Attributes:
        label: Object label.
        spec: Appearance spec of the object's class.
        enter_frame: First frame in which the object is visible.
        exit_frame: One past the last visible frame.
        lane_fraction: Vertical position of the object's centre, as a
            fraction of frame height.
        direction: ``+1`` for left-to-right motion, ``-1`` for right-to-left.
        brightness: Actual luma delta of this instance.
        size_jitter: Multiplicative jitter applied to the class height.
    """

    label: str
    spec: ObjectClassSpec
    enter_frame: int
    exit_frame: int
    lane_fraction: float
    direction: int
    brightness: float
    size_jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.exit_frame <= self.enter_frame:
            raise ConfigurationError("exit_frame must be > enter_frame")
        if self.direction not in (-1, 1):
            raise ConfigurationError("direction must be +1 or -1")

    @property
    def num_frames(self) -> int:
        """Number of frames the object is visible."""
        return self.exit_frame - self.enter_frame

    def is_visible(self, frame_index: int) -> bool:
        """Whether the object is in the scene at ``frame_index``."""
        return self.enter_frame <= frame_index < self.exit_frame

    def bounding_box(self, frame_index: int,
                     resolution: Resolution) -> Optional[Tuple[int, int, int, int]]:
        """Bounding box ``(x0, y0, x1, y1)`` at ``frame_index`` or ``None``.

        The object enters from one side, traverses the frame linearly over
        its dwell time, and exits on the other side; the box is clipped to
        the frame.
        """
        if not self.is_visible(frame_index):
            return None
        height = max(int(round(self.spec.relative_height * self.size_jitter
                               * resolution.height)), 2)
        width = max(int(round(height * self.spec.aspect_ratio)), 2)
        progress = (frame_index - self.enter_frame) / max(self.num_frames - 1, 1)
        span = resolution.width + width
        if self.direction > 0:
            center_x = -width / 2 + progress * span
        else:
            center_x = resolution.width + width / 2 - progress * span
        center_y = self.lane_fraction * resolution.height
        x0 = int(round(center_x - width / 2))
        x1 = int(round(center_x + width / 2))
        y0 = int(round(center_y - height / 2))
        y1 = int(round(center_y + height / 2))
        x0, x1 = max(x0, 0), min(x1, resolution.width)
        y0, y1 = max(y0, 0), min(y1, resolution.height)
        if x0 >= x1 or y0 >= y1:
            return None
        return (x0, y0, x1, y1)


class SceneScript:
    """The event schedule of a synthetic scene: which objects appear when."""

    def __init__(self, tracks: Sequence[ObjectTrack], num_frames: int) -> None:
        if num_frames <= 0:
            raise ConfigurationError("num_frames must be positive")
        self.tracks: Tuple[ObjectTrack, ...] = tuple(
            sorted(tracks, key=lambda track: track.enter_frame))
        self.num_frames = num_frames
        for track in self.tracks:
            if track.exit_frame > num_frames:
                raise ConfigurationError(
                    f"track {track.label} extends past the end of the video")

    def labels_at(self, frame_index: int) -> frozenset:
        """Ground-truth label set at ``frame_index``."""
        return frozenset(track.label for track in self.tracks
                         if track.is_visible(frame_index))

    def visible_tracks(self, frame_index: int) -> List[ObjectTrack]:
        """Tracks visible at ``frame_index``."""
        return [track for track in self.tracks if track.is_visible(frame_index)]

    def frame_labels(self) -> List[frozenset]:
        """Per-frame ground-truth label sets."""
        boundaries = np.zeros(self.num_frames + 1, dtype=bool)
        for track in self.tracks:
            boundaries[track.enter_frame] = True
            boundaries[track.exit_frame] = True
        labels: List[frozenset] = []
        current = self.labels_at(0)
        for index in range(self.num_frames):
            if index > 0 and boundaries[index]:
                current = self.labels_at(index)
            labels.append(current)
        return labels

    def timeline(self) -> EventTimeline:
        """Compress the per-frame labels into an :class:`EventTimeline`."""
        return EventTimeline.from_frame_labels(self.frame_labels())


def generate_script(profile: SceneProfile) -> SceneScript:
    """Sample the object schedule for ``profile``.

    Objects arrive after exponentially distributed idle gaps and dwell for a
    log-normal-ish duration around ``mean_dwell_seconds``.  At most
    ``max_concurrent_objects`` are visible at once; additional arrivals are
    deferred, which mimics e.g. queues of cars entering a junction.

    Args:
        profile: Scene description.

    Returns:
        The sampled :class:`SceneScript`.
    """
    rng = make_rng(profile.seed, profile.name, "script")
    num_frames = profile.num_frames
    specs = [spec for spec, _ in profile.object_classes]
    weights = np.array([weight for _, weight in profile.object_classes], dtype=float)
    weights = weights / weights.sum()

    tracks: List[ObjectTrack] = []
    # Frames at which each "lane slot" becomes free again.
    slot_free_at = [0] * profile.max_concurrent_objects
    cursor = int(rng.exponential(profile.mean_gap_seconds) * profile.fps)
    while cursor < num_frames - 2:
        slot = int(np.argmin(slot_free_at))
        enter = max(cursor, slot_free_at[slot])
        if enter >= num_frames - 2:
            break
        dwell_seconds = max(rng.normal(profile.mean_dwell_seconds,
                                       profile.mean_dwell_seconds * 0.3),
                            profile.mean_dwell_seconds * 0.3)
        dwell_frames = max(int(round(dwell_seconds * profile.fps)), 2)
        exit_frame = min(enter + dwell_frames, num_frames)
        spec = specs[int(rng.choice(len(specs), p=weights))]
        track = ObjectTrack(
            label=spec.label,
            spec=spec,
            enter_frame=enter,
            exit_frame=exit_frame,
            lane_fraction=float(rng.uniform(0.25, 0.75)),
            direction=int(rng.choice([-1, 1])),
            brightness=float(spec.brightness_delta * rng.uniform(0.8, 1.2)
                             * rng.choice([-1.0, 1.0], p=[0.3, 0.7])),
            size_jitter=float(rng.uniform(0.85, 1.15)),
        )
        tracks.append(track)
        slot_free_at[slot] = exit_frame
        gap_frames = int(rng.exponential(profile.mean_gap_seconds) * profile.fps)
        cursor = exit_frame + max(gap_frames, 1)
    return SceneScript(tracks, num_frames)


class SyntheticScene:
    """Renderer for a :class:`SceneProfile`.

    The renderer produces grayscale (luma) frames: the SiEVE mechanism —
    motion-driven I-frame placement, I-frame seeking, per-frame labels — is
    entirely determined by luma motion, and the codec, baselines and NN
    substrate all operate on luma.  Colour frames can be obtained with
    ``as_color=True`` (the luma plane is replicated with a mild per-channel
    tint), which is only needed for JPEG-transport size experiments.

    Args:
        profile: Scene description.
        script: Pre-sampled schedule; sampled from the profile when omitted.
        as_color: Render 3-channel frames instead of grayscale.
    """

    def __init__(self, profile: SceneProfile, script: Optional[SceneScript] = None,
                 as_color: bool = False) -> None:
        self.profile = profile
        self.script = script if script is not None else generate_script(profile)
        self.as_color = as_color
        self._background = self._render_background()

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def _render_background(self) -> np.ndarray:
        """Render the static background texture once."""
        resolution = self.profile.resolution
        rng = make_rng(self.profile.seed, self.profile.name, "background")
        height, width = resolution.shape
        yy, xx = np.mgrid[0:height, 0:width]
        base = self.profile.base_brightness + 30.0 * (yy / max(height - 1, 1))
        # Low-frequency texture: sum of a few random sinusoids, which gives a
        # smooth "road / water / floor" look without needing image assets.
        texture = np.zeros((height, width), dtype=np.float64)
        for _ in range(6):
            fx = rng.uniform(0.5, 4.0) * 2 * math.pi / max(width, 1)
            fy = rng.uniform(0.5, 4.0) * 2 * math.pi / max(height, 1)
            phase = rng.uniform(0, 2 * math.pi)
            amplitude = rng.uniform(0.2, 1.0)
            texture += amplitude * np.sin(fx * xx + fy * yy + phase)
        texture *= self.profile.background_detail / max(np.abs(texture).max(), 1e-9)
        # Static high-frequency grain (asphalt, water ripples, foliage).  It
        # is part of the *scene*, not the sensor: it does not change between
        # frames, but it cannot be predicted by shifting neighbouring pixels,
        # which is what makes occlusions and disocclusions at object
        # boundaries visible to the motion-compensating encoder.
        grain = rng.uniform(-self.profile.texture_detail,
                            self.profile.texture_detail, size=(height, width))
        return np.clip(base + texture + grain, 0, 255)

    def _illumination(self, frame_index: int) -> float:
        """Global brightness offset at ``frame_index`` (drift + flicker).

        The ramp terms are exact no-ops at their ``0.0`` defaults
        (``x + 0.0 * p == x`` and an unchanged flicker amplitude draws
        the identical uniform), keeping default profiles bit-identical.
        """
        period_frames = 45.0 * self.profile.fps
        progress = self.profile.ramp_progress(frame_index)
        level = (self.profile.illumination_drift / 2.0) * math.sin(
            2 * math.pi * frame_index / max(period_frames, 1.0))
        level += self.profile.brightness_ramp * progress
        amplitude = (self.profile.flicker_amplitude
                     + self.profile.flicker_ramp * progress)
        if amplitude > 0:
            # Per-frame deterministic jitter: unlike the slow drift it is
            # uncorrelated between consecutive frames, so the whole frame's
            # residual moves together — exactly what stresses scene-cut
            # detection in low light.
            flicker_rng = make_rng(self.profile.seed, self.profile.name,
                                   "flicker", str(frame_index))
            level += flicker_rng.uniform(-amplitude, amplitude)
        return level

    def frame_array(self, frame_index: int) -> np.ndarray:
        """Render the pixel array of ``frame_index`` (deterministic)."""
        if not 0 <= frame_index < self.profile.num_frames:
            raise ConfigurationError(
                f"frame index {frame_index} outside video of {self.profile.num_frames}")
        resolution = self.profile.resolution
        progress = self.profile.ramp_progress(frame_index)
        # Object contrast fades by the ramp schedule; the 1.0 factor at the
        # default preserves every pixel bit-for-bit (x * 1.0 == x).
        contrast = 1.0 + self.profile.object_contrast_ramp * progress
        image = self._background + self._illumination(frame_index)
        image = image.copy()
        for track in self.script.visible_tracks(frame_index):
            box = track.bounding_box(frame_index, resolution)
            if box is None:
                continue
            x0, y0, x1, y1 = box
            brightness = track.brightness * contrast
            if track.spec.shape == "rectangle":
                image[y0:y1, x0:x1] += brightness
                # A darker "window/cabin" band adds internal texture so that
                # feature-based baselines have something to match.
                band_top = y0 + (y1 - y0) // 4
                band_bottom = y0 + (y1 - y0) // 2
                image[band_top:band_bottom, x0:x1] -= brightness * 0.35
            else:
                yy, xx = np.mgrid[y0:y1, x0:x1]
                cy, cx = (y0 + y1) / 2.0, (x0 + x1) / 2.0
                ry, rx = max((y1 - y0) / 2.0, 1.0), max((x1 - x0) / 2.0, 1.0)
                mask = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0
                region = image[y0:y1, x0:x1]
                region[mask] += brightness
        noise_rng = make_rng(self.profile.seed, self.profile.name, "noise",
                             str(frame_index))
        noise_std = self.profile.noise_std + self.profile.noise_ramp * progress
        if noise_std > 0:
            image += noise_rng.normal(0.0, noise_std, size=image.shape)
        image = np.clip(image, 0, 255).astype(np.uint8)
        if self.as_color:
            tint = np.array([1.0, 0.97, 0.92])
            image = np.clip(image[..., None] * tint, 0, 255).astype(np.uint8)
        return image

    # ------------------------------------------------------------------ #
    # Video construction
    # ------------------------------------------------------------------ #
    def video(self) -> GeneratedVideo:
        """Return a lazily rendered :class:`GeneratedVideo` with ground truth."""
        metadata = VideoMetadata(
            name=self.profile.name,
            resolution=self.profile.resolution,
            fps=self.profile.fps,
            num_frames=self.profile.num_frames,
            extra={"synthetic": True, "seed": self.profile.seed},
        )
        return GeneratedVideo(metadata, self.frame_array, self.script.timeline())

    def materialised_video(self):
        """Render every frame into memory (only sensible for short clips)."""
        return self.video().materialise()


def generate_scene_video(profile: SceneProfile, *,
                         materialise: bool = False,
                         as_color: bool = False):
    """Convenience helper: build the video (and ground truth) for a profile.

    Args:
        profile: Scene description.
        materialise: Render all frames into memory.
        as_color: Render RGB frames.

    Returns:
        A :class:`GeneratedVideo` (or :class:`RawVideo` when materialised)
        whose ``timeline`` attribute carries the ground truth.
    """
    scene = SyntheticScene(profile, as_color=as_color)
    video = scene.video()
    return video.materialise() if materialise else video
