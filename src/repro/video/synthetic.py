"""Procedural surveillance-scene generator.

The paper evaluates SiEVE on real surveillance feeds (Table I).  Those videos
are not redistributable and cannot be downloaded in this offline environment,
so this module generates *synthetic surveillance scenes* that preserve the
properties the evaluation actually depends on:

* a static background viewed by a fixed camera,
* objects of a given class entering the scene, dwelling while moving across
  it, and leaving — producing the paper's notion of *events* (maximal runs of
  frames with the same label set),
* object apparent size controlled per scenario (close-up cars vs. distant
  boats), which determines how much motion an entering object causes and
  therefore which scenecut threshold detects it,
* sensor noise and slow illumination drift, which is what limits naive
  pixel-difference baselines such as MSE.

Every frame is a deterministic function of ``(profile, frame_index)`` so
videos can be streamed lazily without keeping all frames in memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..rng import make_rng
from .events import EventTimeline
from .frame import Resolution
from .raw_video import GeneratedVideo, VideoMetadata


@dataclass(frozen=True)
class ObjectClassSpec:
    """Appearance and motion model of one object class in a scene.

    Attributes:
        label: Object label reported by the ground truth (e.g. ``"car"``).
        relative_height: Object bounding-box height as a fraction of frame
            height.  Close-up objects (Jackson square cars) are large
            (~0.25+); distant objects (Venice boats) are small (~0.05).
        aspect_ratio: Bounding-box width divided by height.
        speed_fraction: Fraction of the frame width the object traverses per
            second of video.
        brightness_delta: Luma offset of the object relative to the
            background (positive = brighter).  Larger objects with larger
            deltas create more inter-frame motion cost.
        shape: ``"rectangle"`` or ``"ellipse"``.
    """

    label: str
    relative_height: float
    aspect_ratio: float = 2.0
    speed_fraction: float = 0.25
    brightness_delta: float = 70.0
    shape: str = "rectangle"

    def __post_init__(self) -> None:
        if not 0.0 < self.relative_height <= 1.0:
            raise ConfigurationError(
                f"relative_height must be in (0, 1], got {self.relative_height}")
        if self.aspect_ratio <= 0:
            raise ConfigurationError("aspect_ratio must be positive")
        if self.speed_fraction <= 0:
            raise ConfigurationError("speed_fraction must be positive")
        if self.shape not in ("rectangle", "ellipse"):
            raise ConfigurationError(f"unknown shape {self.shape!r}")


@dataclass(frozen=True)
class SceneProfile:
    """Full description of a synthetic surveillance scene.

    Attributes:
        name: Scene / camera name.
        resolution: Rendered frame resolution.
        fps: Frame rate.
        duration_seconds: Length of the generated video.
        object_classes: Object classes that may appear, with sampling weights.
        mean_gap_seconds: Mean idle time between the end of one object's
            visit and the start of the next.
        mean_dwell_seconds: Mean time an object stays in the scene.
        noise_std: Standard deviation of per-frame sensor noise (luma units).
        background_detail: Amplitude of the smooth (low-frequency) background
            structure: road markings, water gradients, large shadows.
        texture_detail: Amplitude of the static high-frequency background
            texture (asphalt grain, ripples, foliage).  This texture is what
            makes occlusion/disocclusion at object boundaries unpredictable
            for a motion-compensating encoder — the physical effect real
            scene-cut detection keys on — so it must be comfortably larger
            than the sensor noise.
        illumination_drift: Peak-to-peak amplitude of a slow global
            brightness oscillation (simulates clouds / daylight changes).
        base_brightness: Mean luma level of the background's top edge
            (``110`` reproduces the daylight scenes; low values give
            night-time footage).
        flicker_amplitude: Peak amplitude of a *fast* per-frame global
            brightness jitter (failing street lamps, rolling-shutter
            beating).  Unlike the slow drift it changes between
            consecutive frames, so motion compensation cannot explain it
            away — the stress case for scene-cut detection.  ``0``
            (default) renders bit-identical to the pre-flicker generator.
        brightness_ramp: Luma added to the global illumination, scaled
            linearly from ``0`` at the first frame to the full value at
            the last — a negative ramp morphs a daylight scene into
            night over the clip.  ``0`` (default) is bit-identical.
        flicker_ramp: Added to ``flicker_amplitude`` with the same linear
            schedule (street lamps that degrade as night falls).  ``0``
            (default) is bit-identical.
        noise_ramp: Added to ``noise_std`` with the same linear schedule
            (sensor gain cranking up in low light).  ``0`` (default) is
            bit-identical.
        object_contrast_ramp: Multiplies every object's luma delta by
            ``1 + ramp * progress`` — a negative ramp fades objects into
            the background, which is what genuinely shifts the optimal
            scenecut threshold mid-clip.  ``0`` (default) is
            bit-identical.
        rain_intensity: Density of per-frame bright rain streaks in
            ``[0, 1]``.  Streaks are redrawn every frame, so they are
            unpredictable residual for the motion-compensating encoder —
            the classic false-scene-cut stressor.  ``0`` (default) is
            bit-identical.
        fog_density: Contrast wash towards a bright fog luma in
            ``[0, 1)`` applied over the composed frame — objects fade
            towards the background, shrinking every residual.  ``0``
            (default) is bit-identical.
        snow_density: Per-pixel probability of a bright snow speckle,
            redrawn every frame, in ``[0, 1]``.  ``0`` (default) is
            bit-identical.
        night_cycle_amplitude: Peak luma dip of a day-night illumination
            cycle spanning the clip (a raised-cosine that starts and ends
            at full daylight).  ``0`` (default) is bit-identical.
        night_cycle_periods: Number of day-night cycles across the clip.
        occlusion_fraction: Fraction of the frame width covered by static
            dark foreground pillars (fences, poles, signage) drawn *over*
            the objects, in ``[0, 0.9]``.  ``0`` (default) is
            bit-identical.
        dropout_rate: Per-frame probability, in ``[0, 0.9]``, that the
            camera fails to deliver a frame and the previous delivered
            frame is repeated verbatim (frame 0 is always delivered).
            Repeats are bit-exact, so they cost the encoder nothing but
            desynchronise pixels from the ground-truth labels — the
            realistic price of a lossy camera link.  ``0`` (default) is
            bit-identical.
        exposure_jitter: Peak *multiplicative* per-frame gain jitter in
            ``[0, 1)`` (auto-exposure hunting).  Unlike the additive
            flicker its effect scales with scene brightness.  ``0``
            (default) is bit-identical.
        sensor_jitter_px: Maximum per-frame camera shake translation, in
            pixels (the frame is rolled by a per-frame deterministic
            ``(dy, dx)``).  A translation is exactly what motion search
            can compensate, so this stresses the estimator without
            faking novelty.  ``0`` (default) is bit-identical.
        blockiness: Blend factor in ``[0, 1]`` towards the 8x8
            block-mean image (transcoding/compression artifacts).  ``0``
            (default) is bit-identical.
        max_concurrent_objects: Upper bound on simultaneously visible objects.
        seed: Root seed for the event schedule and appearance sampling.
    """

    name: str
    resolution: Resolution
    fps: float
    duration_seconds: float
    object_classes: Tuple[Tuple[ObjectClassSpec, float], ...]
    mean_gap_seconds: float = 8.0
    mean_dwell_seconds: float = 6.0
    noise_std: float = 2.0
    background_detail: float = 25.0
    texture_detail: float = 28.0
    illumination_drift: float = 3.0
    base_brightness: float = 110.0
    flicker_amplitude: float = 0.0
    brightness_ramp: float = 0.0
    flicker_ramp: float = 0.0
    noise_ramp: float = 0.0
    object_contrast_ramp: float = 0.0
    rain_intensity: float = 0.0
    fog_density: float = 0.0
    snow_density: float = 0.0
    night_cycle_amplitude: float = 0.0
    night_cycle_periods: float = 1.0
    occlusion_fraction: float = 0.0
    dropout_rate: float = 0.0
    exposure_jitter: float = 0.0
    sensor_jitter_px: int = 0
    blockiness: float = 0.0
    max_concurrent_objects: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fps <= 0 or self.duration_seconds <= 0:
            raise ConfigurationError("fps and duration_seconds must be positive")
        if int(round(self.duration_seconds * self.fps)) < 2:
            raise ConfigurationError(
                f"duration_seconds={self.duration_seconds!r} at "
                f"fps={self.fps!r} yields fewer than 2 frames; a clip must "
                f"span at least 2 frames (ramps, schedules and the encoder "
                f"lookahead all assume a successor frame exists)")
        if not 0.0 <= self.base_brightness <= 255.0:
            raise ConfigurationError(
                f"base_brightness must be in [0, 255], got {self.base_brightness}")
        if self.flicker_amplitude < 0:
            raise ConfigurationError(
                f"flicker_amplitude must be >= 0, got {self.flicker_amplitude}")
        if not 0.0 <= self.base_brightness + self.brightness_ramp <= 255.0:
            raise ConfigurationError(
                "base_brightness + brightness_ramp must stay in [0, 255], "
                f"got {self.base_brightness + self.brightness_ramp}")
        if self.flicker_amplitude + self.flicker_ramp < 0:
            raise ConfigurationError(
                "flicker_amplitude + flicker_ramp must be >= 0")
        if self.noise_std + self.noise_ramp < 0:
            raise ConfigurationError("noise_std + noise_ramp must be >= 0")
        if 1.0 + self.object_contrast_ramp < 0:
            raise ConfigurationError(
                "object_contrast_ramp must be >= -1 (contrast cannot flip)")
        if not 0.0 <= self.rain_intensity <= 1.0:
            raise ConfigurationError(
                f"rain_intensity must be in [0, 1], got {self.rain_intensity}")
        if not 0.0 <= self.fog_density < 1.0:
            raise ConfigurationError(
                f"fog_density must be in [0, 1), got {self.fog_density}")
        if not 0.0 <= self.snow_density <= 1.0:
            raise ConfigurationError(
                f"snow_density must be in [0, 1], got {self.snow_density}")
        if self.night_cycle_amplitude < 0:
            raise ConfigurationError(
                f"night_cycle_amplitude must be >= 0, "
                f"got {self.night_cycle_amplitude}")
        if self.night_cycle_periods <= 0:
            raise ConfigurationError(
                f"night_cycle_periods must be > 0, "
                f"got {self.night_cycle_periods}")
        if not 0.0 <= self.occlusion_fraction <= 0.9:
            raise ConfigurationError(
                f"occlusion_fraction must be in [0, 0.9], "
                f"got {self.occlusion_fraction}")
        if not 0.0 <= self.dropout_rate <= 0.9:
            raise ConfigurationError(
                f"dropout_rate must be in [0, 0.9], got {self.dropout_rate}")
        if not 0.0 <= self.exposure_jitter < 1.0:
            raise ConfigurationError(
                f"exposure_jitter must be in [0, 1), got {self.exposure_jitter}")
        if self.sensor_jitter_px < 0:
            raise ConfigurationError(
                f"sensor_jitter_px must be >= 0, got {self.sensor_jitter_px}")
        if not 0.0 <= self.blockiness <= 1.0:
            raise ConfigurationError(
                f"blockiness must be in [0, 1], got {self.blockiness}")
        if not self.object_classes:
            raise ConfigurationError("object_classes must not be empty")
        if self.mean_gap_seconds <= 0 or self.mean_dwell_seconds <= 0:
            raise ConfigurationError("mean gap/dwell must be positive")
        if self.max_concurrent_objects < 1:
            raise ConfigurationError("max_concurrent_objects must be >= 1")
        total_weight = sum(weight for _, weight in self.object_classes)
        if total_weight <= 0:
            raise ConfigurationError("object class weights must sum to a positive value")

    @property
    def num_frames(self) -> int:
        """Number of frames in the generated video."""
        return max(int(round(self.duration_seconds * self.fps)), 1)

    def ramp_progress(self, frame_index: int) -> float:
        """Linear drift-ramp progress at ``frame_index`` (``0`` → ``1``)."""
        return frame_index / max(self.num_frames - 1, 1)

    def scaled(self, factor: float, name: Optional[str] = None) -> "SceneProfile":
        """Return a copy rendered at ``factor`` times the resolution.

        Used to run experiment-scale videos at a reduced pixel count while
        keeping the event structure identical (object sizes are relative).
        """
        return replace(self, name=name or self.name,
                       resolution=self.resolution.scaled(factor))

    def with_duration(self, duration_seconds: float) -> "SceneProfile":
        """Return a copy with a different duration."""
        return replace(self, duration_seconds=duration_seconds)

    def with_seed(self, seed: int) -> "SceneProfile":
        """Return a copy with a different schedule seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class ObjectTrack:
    """A single object's visit to the scene.

    Attributes:
        label: Object label.
        spec: Appearance spec of the object's class.
        enter_frame: First frame in which the object is visible.
        exit_frame: One past the last visible frame.
        lane_fraction: Vertical position of the object's centre, as a
            fraction of frame height.
        direction: ``+1`` for left-to-right motion, ``-1`` for right-to-left.
        brightness: Actual luma delta of this instance.
        size_jitter: Multiplicative jitter applied to the class height.
    """

    label: str
    spec: ObjectClassSpec
    enter_frame: int
    exit_frame: int
    lane_fraction: float
    direction: int
    brightness: float
    size_jitter: float = 1.0

    def __post_init__(self) -> None:
        if self.exit_frame <= self.enter_frame:
            raise ConfigurationError("exit_frame must be > enter_frame")
        if self.direction not in (-1, 1):
            raise ConfigurationError("direction must be +1 or -1")

    @property
    def num_frames(self) -> int:
        """Number of frames the object is visible."""
        return self.exit_frame - self.enter_frame

    def is_visible(self, frame_index: int) -> bool:
        """Whether the object is in the scene at ``frame_index``."""
        return self.enter_frame <= frame_index < self.exit_frame

    def bounding_box(self, frame_index: int,
                     resolution: Resolution) -> Optional[Tuple[int, int, int, int]]:
        """Bounding box ``(x0, y0, x1, y1)`` at ``frame_index`` or ``None``.

        The object enters from one side, traverses the frame linearly over
        its dwell time, and exits on the other side; the box is clipped to
        the frame.
        """
        if not self.is_visible(frame_index):
            return None
        height = max(int(round(self.spec.relative_height * self.size_jitter
                               * resolution.height)), 2)
        width = max(int(round(height * self.spec.aspect_ratio)), 2)
        if self.num_frames > 1:
            progress = (frame_index - self.enter_frame) / (self.num_frames - 1)
        else:
            # A single-frame visit has no trajectory to interpolate; putting
            # it mid-crossing keeps the object on screen instead of parking
            # it off-frame at progress 0 (where clipping deleted the box).
            progress = 0.5
        span = resolution.width + width
        if self.direction > 0:
            center_x = -width / 2 + progress * span
        else:
            center_x = resolution.width + width / 2 - progress * span
        center_y = self.lane_fraction * resolution.height
        x0 = int(round(center_x - width / 2))
        x1 = int(round(center_x + width / 2))
        y0 = int(round(center_y - height / 2))
        y1 = int(round(center_y + height / 2))
        x0, x1 = max(x0, 0), min(x1, resolution.width)
        y0, y1 = max(y0, 0), min(y1, resolution.height)
        if x0 >= x1 or y0 >= y1:
            return None
        return (x0, y0, x1, y1)


class SceneScript:
    """The event schedule of a synthetic scene: which objects appear when."""

    def __init__(self, tracks: Sequence[ObjectTrack], num_frames: int) -> None:
        if num_frames <= 0:
            raise ConfigurationError("num_frames must be positive")
        self.tracks: Tuple[ObjectTrack, ...] = tuple(
            sorted(tracks, key=lambda track: track.enter_frame))
        self.num_frames = num_frames
        for track in self.tracks:
            if track.exit_frame > num_frames:
                raise ConfigurationError(
                    f"track {track.label} extends past the end of the video")

    def labels_at(self, frame_index: int) -> frozenset:
        """Ground-truth label set at ``frame_index``."""
        return frozenset(track.label for track in self.tracks
                         if track.is_visible(frame_index))

    def visible_tracks(self, frame_index: int) -> List[ObjectTrack]:
        """Tracks visible at ``frame_index``."""
        return [track for track in self.tracks if track.is_visible(frame_index)]

    def frame_labels(self) -> List[frozenset]:
        """Per-frame ground-truth label sets."""
        boundaries = np.zeros(self.num_frames + 1, dtype=bool)
        for track in self.tracks:
            boundaries[track.enter_frame] = True
            boundaries[track.exit_frame] = True
        labels: List[frozenset] = []
        current = self.labels_at(0)
        for index in range(self.num_frames):
            if index > 0 and boundaries[index]:
                current = self.labels_at(index)
            labels.append(current)
        return labels

    def timeline(self) -> EventTimeline:
        """Compress the per-frame labels into an :class:`EventTimeline`."""
        return EventTimeline.from_frame_labels(self.frame_labels())


def generate_script(profile: SceneProfile) -> SceneScript:
    """Sample the object schedule for ``profile``.

    Objects arrive after exponentially distributed idle gaps and dwell for a
    log-normal-ish duration around ``mean_dwell_seconds``.  At most
    ``max_concurrent_objects`` are visible at once; additional arrivals are
    deferred, which mimics e.g. queues of cars entering a junction.

    Args:
        profile: Scene description.

    Returns:
        The sampled :class:`SceneScript`.
    """
    rng = make_rng(profile.seed, profile.name, "script")
    num_frames = profile.num_frames
    specs = [spec for spec, _ in profile.object_classes]
    weights = np.array([weight for _, weight in profile.object_classes], dtype=float)
    weights = weights / weights.sum()

    tracks: List[ObjectTrack] = []
    # Frames at which each "lane slot" becomes free again.
    slot_free_at = [0] * profile.max_concurrent_objects
    cursor = int(rng.exponential(profile.mean_gap_seconds) * profile.fps)
    while cursor < num_frames - 2:
        slot = int(np.argmin(slot_free_at))
        enter = max(cursor, slot_free_at[slot])
        if enter >= num_frames - 2:
            break
        dwell_seconds = max(rng.normal(profile.mean_dwell_seconds,
                                       profile.mean_dwell_seconds * 0.3),
                            profile.mean_dwell_seconds * 0.3)
        dwell_frames = max(int(round(dwell_seconds * profile.fps)), 2)
        exit_frame = min(enter + dwell_frames, num_frames)
        spec = specs[int(rng.choice(len(specs), p=weights))]
        track = ObjectTrack(
            label=spec.label,
            spec=spec,
            enter_frame=enter,
            exit_frame=exit_frame,
            lane_fraction=float(rng.uniform(0.25, 0.75)),
            direction=int(rng.choice([-1, 1])),
            brightness=float(spec.brightness_delta * rng.uniform(0.8, 1.2)
                             * rng.choice([-1.0, 1.0], p=[0.3, 0.7])),
            size_jitter=float(rng.uniform(0.85, 1.15)),
        )
        tracks.append(track)
        slot_free_at[slot] = exit_frame
        gap_frames = int(rng.exponential(profile.mean_gap_seconds) * profile.fps)
        cursor = exit_frame + max(gap_frames, 1)
    return SceneScript(tracks, num_frames)


def _block_average(image: np.ndarray, block: int = 8) -> np.ndarray:
    """Replace each ``block x block`` tile with its mean (edge-padded).

    This is the compression-artifact model behind ``blockiness``: a cheap
    stand-in for a harsh requantisation pass that flattens every
    macroblock.
    """
    height, width = image.shape
    pad_y = (-height) % block
    pad_x = (-width) % block
    padded = np.pad(image, ((0, pad_y), (0, pad_x)), mode="edge")
    tiles = padded.reshape(padded.shape[0] // block, block,
                           padded.shape[1] // block, block)
    means = tiles.mean(axis=(1, 3))
    expanded = np.repeat(np.repeat(means, block, axis=0), block, axis=1)
    return expanded[:height, :width]


class SyntheticScene:
    """Renderer for a :class:`SceneProfile`.

    The renderer produces grayscale (luma) frames: the SiEVE mechanism —
    motion-driven I-frame placement, I-frame seeking, per-frame labels — is
    entirely determined by luma motion, and the codec, baselines and NN
    substrate all operate on luma.  Colour frames can be obtained with
    ``as_color=True`` (the luma plane is replicated with a mild per-channel
    tint), which is only needed for JPEG-transport size experiments.

    Args:
        profile: Scene description.
        script: Pre-sampled schedule; sampled from the profile when omitted.
        as_color: Render 3-channel frames instead of grayscale.
    """

    def __init__(self, profile: SceneProfile, script: Optional[SceneScript] = None,
                 as_color: bool = False) -> None:
        self.profile = profile
        self.script = script if script is not None else generate_script(profile)
        self.as_color = as_color
        self._background = self._render_background()
        # Every DSL stage below is gated on its non-default value so the
        # default profiles draw zero extra RNG and render bit-identically
        # (pinned by tests/contracts/test_scenario_anchors.py).
        self._occluders = (self._sample_occluders()
                           if profile.occlusion_fraction > 0 else ())
        self._delivered = (self._delivery_schedule()
                           if profile.dropout_rate > 0 else None)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def _render_background(self) -> np.ndarray:
        """Render the static background texture once."""
        resolution = self.profile.resolution
        rng = make_rng(self.profile.seed, self.profile.name, "background")
        height, width = resolution.shape
        yy, xx = np.mgrid[0:height, 0:width]
        base = self.profile.base_brightness + 30.0 * (yy / max(height - 1, 1))
        # Low-frequency texture: sum of a few random sinusoids, which gives a
        # smooth "road / water / floor" look without needing image assets.
        texture = np.zeros((height, width), dtype=np.float64)
        for _ in range(6):
            fx = rng.uniform(0.5, 4.0) * 2 * math.pi / max(width, 1)
            fy = rng.uniform(0.5, 4.0) * 2 * math.pi / max(height, 1)
            phase = rng.uniform(0, 2 * math.pi)
            amplitude = rng.uniform(0.2, 1.0)
            texture += amplitude * np.sin(fx * xx + fy * yy + phase)
        texture *= self.profile.background_detail / max(np.abs(texture).max(), 1e-9)
        # Static high-frequency grain (asphalt, water ripples, foliage).  It
        # is part of the *scene*, not the sensor: it does not change between
        # frames, but it cannot be predicted by shifting neighbouring pixels,
        # which is what makes occlusions and disocclusions at object
        # boundaries visible to the motion-compensating encoder.
        grain = rng.uniform(-self.profile.texture_detail,
                            self.profile.texture_detail, size=(height, width))
        return np.clip(base + texture + grain, 0, 255)

    def _sample_occluders(self) -> Tuple[Tuple[int, int], ...]:
        """Sample the static foreground pillars (fences, poles, signage).

        Pillars are part of the scene: they never move, but they are drawn
        *over* the objects, so a crossing object genuinely disappears and
        reappears — the disocclusion events real scene-cut detection has
        to survive.
        """
        resolution = self.profile.resolution
        rng = make_rng(self.profile.seed, self.profile.name, "occluders")
        width = resolution.width
        target = self.profile.occlusion_fraction * width
        pillars = []
        covered = 0
        while covered < target:
            pillar = max(int(round(rng.uniform(0.03, 0.09) * width)), 1)
            x0 = int(rng.integers(0, max(width - pillar, 1)))
            pillars.append((x0, x0 + pillar))
            covered += pillar
        return tuple(pillars)

    def _delivery_schedule(self) -> List[int]:
        """Map each frame index to the source frame the camera delivered.

        Frame 0 is always delivered; afterwards each frame is dropped with
        probability ``dropout_rate`` (per-frame deterministic draw) and the
        previous delivered frame repeats verbatim.  Rendering the *source*
        index keeps repeats bit-exact, so a dropped frame is a zero-residual
        P-frame — the camera link stutters, the encoder shrugs.
        """
        rate = self.profile.dropout_rate
        delivered = [0]
        for index in range(1, self.profile.num_frames):
            drop_rng = make_rng(self.profile.seed, self.profile.name,
                                "dropout", str(index))
            delivered.append(delivered[-1] if drop_rng.random() < rate
                             else index)
        return delivered

    def _illumination(self, frame_index: int) -> float:
        """Global brightness offset at ``frame_index`` (drift + flicker).

        The ramp terms are exact no-ops at their ``0.0`` defaults
        (``x + 0.0 * p == x`` and an unchanged flicker amplitude draws
        the identical uniform), keeping default profiles bit-identical.
        """
        period_frames = 45.0 * self.profile.fps
        progress = self.profile.ramp_progress(frame_index)
        level = (self.profile.illumination_drift / 2.0) * math.sin(
            2 * math.pi * frame_index / max(period_frames, 1.0))
        level += self.profile.brightness_ramp * progress
        if self.profile.night_cycle_amplitude > 0:
            # Raised cosine: full daylight at both clip ends, the deepest
            # night at each cycle's midpoint — smooth enough that motion
            # compensation tracks it, dark enough to starve object contrast.
            cycle = 0.5 * (1.0 - math.cos(
                2 * math.pi * self.profile.night_cycle_periods * progress))
            level -= self.profile.night_cycle_amplitude * cycle
        amplitude = (self.profile.flicker_amplitude
                     + self.profile.flicker_ramp * progress)
        if amplitude > 0:
            # Per-frame deterministic jitter: unlike the slow drift it is
            # uncorrelated between consecutive frames, so the whole frame's
            # residual moves together — exactly what stresses scene-cut
            # detection in low light.
            flicker_rng = make_rng(self.profile.seed, self.profile.name,
                                   "flicker", str(frame_index))
            level += flicker_rng.uniform(-amplitude, amplitude)
        return level

    def frame_array(self, frame_index: int) -> np.ndarray:
        """Render the pixel array of ``frame_index`` (deterministic)."""
        if not 0 <= frame_index < self.profile.num_frames:
            raise ConfigurationError(
                f"frame index {frame_index} outside video of {self.profile.num_frames}")
        if self._delivered is not None:
            # A dropped frame repeats the previous delivered frame verbatim:
            # rendering the *source* index reproduces it bit-exactly.
            frame_index = self._delivered[frame_index]
        resolution = self.profile.resolution
        progress = self.profile.ramp_progress(frame_index)
        # Object contrast fades by the ramp schedule; the 1.0 factor at the
        # default preserves every pixel bit-for-bit (x * 1.0 == x).
        contrast = 1.0 + self.profile.object_contrast_ramp * progress
        # The broadcast add already allocates a fresh array, so the objects
        # below may draw into it in place without touching the cached
        # background.
        image = self._background + self._illumination(frame_index)
        for track in self.script.visible_tracks(frame_index):
            box = track.bounding_box(frame_index, resolution)
            if box is None:
                continue
            x0, y0, x1, y1 = box
            brightness = track.brightness * contrast
            if track.spec.shape == "rectangle":
                image[y0:y1, x0:x1] += brightness
                # A darker "window/cabin" band adds internal texture so that
                # feature-based baselines have something to match.
                band_top = y0 + (y1 - y0) // 4
                band_bottom = y0 + (y1 - y0) // 2
                image[band_top:band_bottom, x0:x1] -= brightness * 0.35
            else:
                yy, xx = np.mgrid[y0:y1, x0:x1]
                cy, cx = (y0 + y1) / 2.0, (x0 + x1) / 2.0
                ry, rx = max((y1 - y0) / 2.0, 1.0), max((x1 - x0) / 2.0, 1.0)
                mask = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0
                region = image[y0:y1, x0:x1]
                region[mask] += brightness
        for x0, x1 in self._occluders:
            # Foreground pillars darken whatever they cover — including the
            # objects drawn above, which is the point.
            image[:, x0:x1] *= 0.3
        if self.profile.fog_density > 0:
            fog = self.profile.fog_density
            image = image * (1.0 - fog) + 200.0 * fog
        if self.profile.rain_intensity > 0:
            rain_rng = make_rng(self.profile.seed, self.profile.name, "rain",
                                str(frame_index))
            height, width = image.shape
            streaks = max(int(round(self.profile.rain_intensity * width * 0.5)), 1)
            length = max(height // 10, 2)
            xs = rain_rng.integers(0, width, size=streaks)
            ys = rain_rng.integers(0, height, size=streaks)
            for x, y in zip(xs, ys):
                image[y:y + length, x] += 25.0
        if self.profile.snow_density > 0:
            snow_rng = make_rng(self.profile.seed, self.profile.name, "snow",
                                str(frame_index))
            flakes = snow_rng.random(size=image.shape) < self.profile.snow_density
            image[flakes] += 45.0
        noise_rng = make_rng(self.profile.seed, self.profile.name, "noise",
                             str(frame_index))
        noise_std = self.profile.noise_std + self.profile.noise_ramp * progress
        if noise_std > 0:
            image += noise_rng.normal(0.0, noise_std, size=image.shape)
        if self.profile.exposure_jitter > 0:
            gain_rng = make_rng(self.profile.seed, self.profile.name,
                                "exposure", str(frame_index))
            jitter = self.profile.exposure_jitter
            image *= 1.0 + gain_rng.uniform(-jitter, jitter)
        if self.profile.sensor_jitter_px > 0:
            shake_rng = make_rng(self.profile.seed, self.profile.name,
                                 "jitter", str(frame_index))
            bound = self.profile.sensor_jitter_px
            dy, dx = shake_rng.integers(-bound, bound + 1, size=2)
            image = np.roll(image, (int(dy), int(dx)), axis=(0, 1))
        if self.profile.blockiness > 0:
            image = (image * (1.0 - self.profile.blockiness)
                     + _block_average(image) * self.profile.blockiness)
        image = np.clip(image, 0, 255).astype(np.uint8)
        if self.as_color:
            tint = np.array([1.0, 0.97, 0.92])
            image = np.clip(image[..., None] * tint, 0, 255).astype(np.uint8)
        return image

    # ------------------------------------------------------------------ #
    # Video construction
    # ------------------------------------------------------------------ #
    def video(self) -> GeneratedVideo:
        """Return a lazily rendered :class:`GeneratedVideo` with ground truth."""
        metadata = VideoMetadata(
            name=self.profile.name,
            resolution=self.profile.resolution,
            fps=self.profile.fps,
            num_frames=self.profile.num_frames,
            extra={"synthetic": True, "seed": self.profile.seed},
        )
        return GeneratedVideo(metadata, self.frame_array, self.script.timeline())

    def materialised_video(self):
        """Render every frame into memory (only sensible for short clips)."""
        return self.video().materialise()


def generate_scene_video(profile: SceneProfile, *,
                         materialise: bool = False,
                         as_color: bool = False):
    """Convenience helper: build the video (and ground truth) for a profile.

    Args:
        profile: Scene description.
        materialise: Render all frames into memory.
        as_color: Render RGB frames.

    Returns:
        A :class:`GeneratedVideo` (or :class:`RawVideo` when materialised)
        whose ``timeline`` attribute carries the ground truth.
    """
    scene = SyntheticScene(profile, as_color=as_color)
    video = scene.video()
    return video.materialise() if materialise else video
