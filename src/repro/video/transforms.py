"""Composable scenario transforms: weather, day-night, crowds, camera faults.

The eight shipped scenario profiles cover the paper's Table I; this module
turns them into a *family*.  Each transform is a small, orthogonal,
deterministic rewrite of a :class:`~repro.video.synthetic.SceneProfile` —
weather (rain, fog, snow), day-night illumination cycles, crowd density,
static occluders and camera faults (frame dropout, exposure flicker,
sensor shake, compression blockiness).  Three rules keep them safe to
stack:

* **No-op defaults.**  Every factory called with its default arguments
  returns a transform that leaves the profile *equal* — and therefore the
  rendered frames bit-identical (the renderer gates every effect on its
  non-default value).  Pinned per transform in ``tests/video``.
* **Name stability.**  Transforms never rename the profile: the name keys
  every ``make_rng`` stream (schedule, background, per-frame noise), so a
  rain layer over ``highway`` keeps the exact highway traffic underneath.
* **Seeded determinism.**  Effects that need randomness draw from their
  own ``make_rng(profile.seed, profile.name, <stage>, ...)`` stream inside
  the renderer; composition order cannot reorder anybody's draws.

Composition is exposed two ways: programmatically via :func:`compose`
(returns a scenario constructor) and as a spec string —
``"highway+rain+night_cycle"`` — accepted by
:func:`~repro.video.scenarios.make_scenario` and usable anywhere a
scenario name is (stream sessions, examples, the fuzzer).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

from ..errors import DatasetError
from .scenarios import (DEFAULT_DURATION_SECONDS, DEFAULT_RENDER_SCALE,
                        SCENARIOS)
from .synthetic import SceneProfile


@dataclass(frozen=True)
class ScenarioTransform:
    """A named, deterministic rewrite of a :class:`SceneProfile`."""

    name: str
    apply: Callable[[SceneProfile], SceneProfile]

    def __call__(self, profile: SceneProfile) -> SceneProfile:
        transformed = self.apply(profile)
        if transformed.name != profile.name:
            raise DatasetError(
                f"transform {self.name!r} renamed the profile "
                f"{profile.name!r} -> {transformed.name!r}; the name keys "
                f"every RNG stream and must be stable")
        return transformed


def rain(intensity: float = 0.0) -> ScenarioTransform:
    """Bright rain streaks redrawn every frame (``0`` = exact no-op)."""
    return ScenarioTransform(
        "rain", lambda profile: replace(profile, rain_intensity=intensity))


def fog(density: float = 0.0) -> ScenarioTransform:
    """Contrast wash towards a bright fog luma (``0`` = exact no-op)."""
    return ScenarioTransform(
        "fog", lambda profile: replace(profile, fog_density=density))


def snow(density: float = 0.0) -> ScenarioTransform:
    """Per-frame bright speckle (``0`` = exact no-op)."""
    return ScenarioTransform(
        "snow", lambda profile: replace(profile, snow_density=density))


def night_cycle(amplitude: float = 0.0,
                periods: float = 1.0) -> ScenarioTransform:
    """Day-night raised-cosine illumination cycle (``0`` = exact no-op)."""
    return ScenarioTransform(
        "night_cycle",
        lambda profile: replace(profile, night_cycle_amplitude=amplitude,
                                night_cycle_periods=periods))


def crowd(gap_factor: float = 1.0, dwell_factor: float = 1.0,
          max_concurrent: Optional[int] = None) -> ScenarioTransform:
    """Scale arrival density and concurrency (defaults = exact no-op).

    ``gap_factor < 1`` shrinks the idle gaps between visits (denser
    traffic); ``max_concurrent`` raises the simultaneous-object cap.
    Unlike the pixel-stage transforms this one rewrites the *schedule*
    inputs, so it changes the sampled script — deliberately: crowding is
    an event-structure property, not a pixel effect.
    """
    def apply(profile: SceneProfile) -> SceneProfile:
        if gap_factor <= 0 or dwell_factor <= 0:
            raise DatasetError("crowd factors must be positive")
        return replace(
            profile,
            mean_gap_seconds=profile.mean_gap_seconds * gap_factor,
            mean_dwell_seconds=profile.mean_dwell_seconds * dwell_factor,
            max_concurrent_objects=(profile.max_concurrent_objects
                                    if max_concurrent is None
                                    else max_concurrent))
    return ScenarioTransform("crowd", apply)


def occlusion(fraction: float = 0.0) -> ScenarioTransform:
    """Static dark foreground pillars (``0`` = exact no-op)."""
    return ScenarioTransform(
        "occlusion",
        lambda profile: replace(profile, occlusion_fraction=fraction))


def dropout(rate: float = 0.0) -> ScenarioTransform:
    """Per-frame delivery dropout, repeats last frame (``0`` = exact no-op)."""
    return ScenarioTransform(
        "dropout", lambda profile: replace(profile, dropout_rate=rate))


def exposure_flicker(jitter: float = 0.0) -> ScenarioTransform:
    """Multiplicative per-frame gain hunting (``0`` = exact no-op)."""
    return ScenarioTransform(
        "exposure_flicker",
        lambda profile: replace(profile, exposure_jitter=jitter))


def sensor_jitter(pixels: int = 0) -> ScenarioTransform:
    """Per-frame camera-shake translation (``0`` = exact no-op)."""
    return ScenarioTransform(
        "sensor_jitter",
        lambda profile: replace(profile, sensor_jitter_px=pixels))


def blocky(strength: float = 0.0) -> ScenarioTransform:
    """Compression-artifact block flattening (``0`` = exact no-op)."""
    return ScenarioTransform(
        "blocky", lambda profile: replace(profile, blockiness=strength))


#: Factories of every transform, keyed by name, at their *no-op* defaults.
#: The no-op pinning tests iterate this mapping, so adding a factory here
#: automatically puts its default under the bit-identity contract.
TRANSFORM_FACTORIES: Dict[str, Callable[..., ScenarioTransform]] = {
    "rain": rain,
    "fog": fog,
    "snow": snow,
    "night_cycle": night_cycle,
    "crowd": crowd,
    "occlusion": occlusion,
    "dropout": dropout,
    "exposure_flicker": exposure_flicker,
    "sensor_jitter": sensor_jitter,
    "blocky": blocky,
}

#: Named presets used by composition specs: each entry is a zero-argument
#: callable returning a transform with *non-trivial* parameters.  Presets
#: are intentionally moderate — severe enough to move the tuned optimum,
#: mild enough that a composed stack of three still yields a recognisable
#: surveillance feed (the fuzzer samples arbitrary subsets of these).
TRANSFORMS: Dict[str, Callable[[], ScenarioTransform]] = {
    "rain": lambda: rain(0.35),
    "fog": lambda: fog(0.45),
    "snow": lambda: snow(0.02),
    "night_cycle": lambda: night_cycle(amplitude=70.0, periods=1.0),
    "crowd": lambda: crowd(gap_factor=0.4, max_concurrent=4),
    "occlusion": lambda: occlusion(0.18),
    "dropout": lambda: dropout(0.08),
    "exposure_flicker": lambda: exposure_flicker(0.05),
    "sensor_jitter": lambda: sensor_jitter(1),
    "blocky": lambda: blocky(0.5),
}


def apply_transforms(profile: SceneProfile,
                     *transforms: ScenarioTransform) -> SceneProfile:
    """Apply ``transforms`` left to right."""
    for transform in transforms:
        profile = transform(profile)
    return profile


def parse_spec(spec: str) -> Tuple[str, Tuple[str, ...]]:
    """Split ``"base+transform+transform"`` into its validated parts."""
    base, *names = [part.strip() for part in spec.split("+")]
    if not base:
        raise DatasetError(f"composition spec {spec!r} has an empty base")
    unknown = [name for name in names if name not in TRANSFORMS]
    if unknown:
        raise DatasetError(
            f"unknown transform(s) {unknown} in spec {spec!r}; expected "
            f"one of {sorted(TRANSFORMS)}")
    return base, tuple(names)


def compose(base: str, *transform_names: str):
    """Build a scenario constructor for ``base`` plus preset transforms.

    The returned callable has the registry constructor signature
    ``(duration_seconds, render_scale, seed=None)`` — a ``seed`` override
    is forwarded to the *base* constructor so it reaches schedule
    generation, exactly like the plain scenarios.
    """
    unknown = [name for name in transform_names if name not in TRANSFORMS]
    if unknown:
        raise DatasetError(
            f"unknown transform(s) {unknown}; expected one of "
            f"{sorted(TRANSFORMS)}")

    def constructor(duration_seconds: float = DEFAULT_DURATION_SECONDS,
                    render_scale: float = DEFAULT_RENDER_SCALE,
                    seed: Optional[int] = None) -> SceneProfile:
        try:
            base_constructor = SCENARIOS[base]
        except KeyError as exc:
            raise DatasetError(
                f"unknown base scenario {base!r}; expected one of "
                f"{sorted(name for name in SCENARIOS if '+' not in name)}"
            ) from exc
        kwargs = {} if seed is None else {"seed": seed}
        profile = base_constructor(duration_seconds=duration_seconds,
                                   render_scale=render_scale, **kwargs)
        return apply_transforms(
            profile, *(TRANSFORMS[name]() for name in transform_names))

    constructor.__name__ = "compose_" + "_".join((base,) + transform_names)
    constructor.__doc__ = (f"Composed scenario: {base} + "
                           f"{', '.join(transform_names) or 'nothing'}.")
    return constructor


def compose_spec(spec: str):
    """:func:`compose` from a ``"base+t1+t2"`` spec string."""
    base, names = parse_spec(spec)
    return compose(base, *names)


def register_composed(spec: str) -> None:
    """Register a composition spec as a first-class ``SCENARIOS`` entry."""
    if spec in SCENARIOS:
        raise DatasetError(f"scenario {spec!r} is already registered")
    SCENARIOS[spec] = compose_spec(spec)


#: Composed scenarios shipped in the registry: a rainy highway sliding
#: into night, a crowded foggy square, and a snowy low-light feed on a
#: lossy camera link.  They behave exactly like the hand-written entries
#: (``make_scenario``, ``all_scenarios``, stream sessions, examples).
BUILTIN_COMPOSED_SPECS = (
    "highway+rain+night_cycle",
    "taipei+crowd+fog",
    "night+snow+dropout",
)

for _spec in BUILTIN_COMPOSED_SPECS:
    register_composed(_spec)
