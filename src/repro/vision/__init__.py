"""Decode-based vision baselines (MSE, SIFT) and shared image operations."""

from .imageops import (downsample, gaussian_blur, gradient_magnitude_orientation,
                       gradients, mean_squared_error, normalize_plane, resize,
                       to_grayscale)
from .mse import MseChangeDetector
from .sift import FrameFeatures, Keypoint, SiftChangeDetector, SiftLite
from .similarity import (ChangeDetector, ThresholdSampler, sampled_fraction,
                         score_video, threshold_for_sampling_fraction)

__all__ = [
    "downsample", "gaussian_blur", "gradient_magnitude_orientation", "gradients",
    "mean_squared_error", "normalize_plane", "resize", "to_grayscale",
    "MseChangeDetector",
    "FrameFeatures", "Keypoint", "SiftChangeDetector", "SiftLite",
    "ChangeDetector", "ThresholdSampler", "sampled_fraction", "score_video",
    "threshold_for_sampling_fraction",
]
