"""Basic image operations shared by the vision baselines and the NN substrate.

Everything operates on 2-D float64 luma planes (or passes colour frames
through :func:`to_grayscale` first) and is implemented with plain numpy so
the library has no OpenCV dependency.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Convert an image to a float64 luma plane (BT.601 weights)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim == 2:
        return image
    if image.ndim == 3 and image.shape[2] == 3:
        return image @ np.array([0.299, 0.587, 0.114])
    raise ConfigurationError(f"expected (H, W) or (H, W, 3) image, got {image.shape}")


def resize(image: np.ndarray, size: Tuple[int, int]) -> np.ndarray:
    """Resize an image to ``(width, height)`` with bilinear interpolation.

    Args:
        image: 2-D or 3-D array.
        size: Target ``(width, height)``.

    Returns:
        The resized array with the same dtype as the input (rounded for
        integer inputs).
    """
    width, height = size
    if width <= 0 or height <= 0:
        raise ConfigurationError(f"target size must be positive, got {size}")
    source = np.asarray(image)
    src_h, src_w = source.shape[:2]
    if (src_w, src_h) == (width, height):
        return source.copy()
    row_positions = np.linspace(0, src_h - 1, height)
    col_positions = np.linspace(0, src_w - 1, width)
    row_low = np.floor(row_positions).astype(int)
    col_low = np.floor(col_positions).astype(int)
    row_high = np.minimum(row_low + 1, src_h - 1)
    col_high = np.minimum(col_low + 1, src_w - 1)
    row_frac = (row_positions - row_low)
    col_frac = (col_positions - col_low)
    working = source.astype(np.float64)

    def gather(rows, cols):
        return working[np.ix_(rows, cols)]

    top = (gather(row_low, col_low).T * (1 - col_frac[:, None])
           + gather(row_low, col_high).T * col_frac[:, None]).T
    bottom = (gather(row_high, col_low).T * (1 - col_frac[:, None])
              + gather(row_high, col_high).T * col_frac[:, None]).T
    resized = top * (1 - row_frac)[:, None] + bottom * row_frac[:, None]
    if np.issubdtype(source.dtype, np.integer):
        return np.clip(np.round(resized), 0, 255).astype(source.dtype)
    return resized


@lru_cache(maxsize=32)
def gaussian_kernel_1d(sigma: float, radius: int) -> np.ndarray:
    """Normalised 1-D Gaussian kernel."""
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-(xs ** 2) / (2.0 * sigma ** 2))
    return kernel / kernel.sum()


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Separable Gaussian blur of a 2-D plane (reflect padding).

    Uses :func:`scipy.ndimage.gaussian_filter` when SciPy is available and
    falls back to a pure-numpy separable convolution otherwise; both paths
    use the same truncation radius so results agree to numerical precision.
    """
    plane = np.asarray(image, dtype=np.float64)
    if plane.ndim != 2:
        raise ConfigurationError("gaussian_blur expects a 2-D plane")
    if sigma <= 0:
        return plane.copy()
    try:
        from scipy import ndimage
    except ImportError:  # pragma: no cover - SciPy is an optional accelerator.
        ndimage = None
    if ndimage is not None:
        return ndimage.gaussian_filter(plane, sigma=float(sigma), mode="reflect",
                                       truncate=3.0)
    radius = max(int(round(3.0 * sigma)), 1)
    kernel = gaussian_kernel_1d(float(sigma), radius)
    padded = np.pad(plane, ((0, 0), (radius, radius)), mode="reflect")
    blurred = np.apply_along_axis(
        lambda row: np.convolve(row, kernel, mode="valid"), 1, padded)
    padded = np.pad(blurred, ((radius, radius), (0, 0)), mode="reflect")
    return np.apply_along_axis(
        lambda col: np.convolve(col, kernel, mode="valid"), 0, padded)


def gradients(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Central-difference gradients ``(dy, dx)`` of a 2-D plane."""
    plane = np.asarray(image, dtype=np.float64)
    if plane.ndim != 2:
        raise ConfigurationError("gradients expects a 2-D plane")
    dy = np.zeros_like(plane)
    dx = np.zeros_like(plane)
    dy[1:-1, :] = (plane[2:, :] - plane[:-2, :]) / 2.0
    dx[:, 1:-1] = (plane[:, 2:] - plane[:, :-2]) / 2.0
    return dy, dx


def gradient_magnitude_orientation(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and orientation (radians in ``[0, 2*pi)``)."""
    dy, dx = gradients(image)
    magnitude = np.hypot(dx, dy)
    orientation = np.mod(np.arctan2(dy, dx), 2.0 * np.pi)
    return magnitude, orientation


def downsample(image: np.ndarray, factor: int = 2) -> np.ndarray:
    """Downsample a 2-D plane by an integer factor (block averaging)."""
    if factor < 1:
        raise ConfigurationError("factor must be >= 1")
    plane = np.asarray(image, dtype=np.float64)
    height = (plane.shape[0] // factor) * factor
    width = (plane.shape[1] // factor) * factor
    if height == 0 or width == 0:
        raise ConfigurationError("image too small for the requested downsampling")
    trimmed = plane[:height, :width]
    return trimmed.reshape(height // factor, factor, width // factor, factor).mean(
        axis=(1, 3))


def normalize_plane(image: np.ndarray) -> np.ndarray:
    """Scale a plane to zero mean and unit variance (used by NN preprocessing)."""
    plane = np.asarray(image, dtype=np.float64)
    std = plane.std()
    if std < 1e-12:
        return np.zeros_like(plane)
    return (plane - plane.mean()) / std


def mean_squared_error(first: np.ndarray, second: np.ndarray) -> float:
    """Pixel-wise mean squared error between two planes of equal shape."""
    a = np.asarray(first, dtype=np.float64)
    b = np.asarray(second, dtype=np.float64)
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))
