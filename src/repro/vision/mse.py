"""Mean-squared-error change detector (baseline).

The simplest decode-based filter evaluated in the paper: decode every frame,
compute the pixel-wise mean squared difference against the previous frame,
and forward the frame to the NN when the difference exceeds a threshold.
MSE is cheap but purely global, so it is good at catching small objects
(whose few changed pixels still shift the global mean) yet blind to *which*
part of the scene changed and easily disturbed by illumination drift — the
behaviour the paper observes in Figure 3.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .imageops import downsample, mean_squared_error
from .similarity import ChangeDetector


class MseChangeDetector(ChangeDetector):
    """Frame-difference detector using pixel-wise mean squared error.

    Args:
        downsample_factor: Optional integer factor by which frames are
            downsampled before the comparison (NoScope uses 100x100
            thumbnails; ``1`` compares at full resolution).
        blur_sigma: Unused placeholder for API symmetry with richer
            detectors; MSE operates on raw pixels.
    """

    name = "mse"

    def __init__(self, downsample_factor: int = 1) -> None:
        if downsample_factor < 1:
            raise ConfigurationError("downsample_factor must be >= 1")
        self.downsample_factor = downsample_factor
        self._previous: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._previous = None

    def _prepare(self, plane: np.ndarray) -> np.ndarray:
        plane = np.asarray(plane, dtype=np.float64)
        if self.downsample_factor > 1:
            plane = downsample(plane, self.downsample_factor)
        return plane

    def score_pair(self, previous: np.ndarray, current: np.ndarray) -> float:
        return mean_squared_error(self._prepare(previous), self._prepare(current))

    def score_next(self, current: np.ndarray) -> float:
        prepared = self._prepare(current)
        previous = self._previous
        self._previous = prepared
        if previous is None:
            return float("inf")
        return mean_squared_error(previous, prepared)
