"""SIFT-lite: scale-invariant keypoints, descriptors and matching.

The paper's second decode-based baseline matches SIFT features between
consecutive frames and declares an event when the match quality drops.
OpenCV is not available in this environment, so this module implements a
compact but faithful variant of Lowe's pipeline:

* difference-of-Gaussians keypoint detection over a small scale stack,
* 128-dimensional descriptors (4x4 spatial cells x 8 orientation bins of
  Gaussian-weighted gradient histograms),
* nearest-neighbour matching with Lowe's ratio test.

Descriptor extraction is vectorised over all keypoints of a frame, which
keeps the per-frame cost in the low milliseconds for the clip resolutions
used by the experiments — still one to two orders of magnitude more
expensive than I-frame seeking, exactly the cost relationship Table III
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .imageops import gaussian_blur, gradient_magnitude_orientation
from .similarity import ChangeDetector

#: Number of spatial cells per descriptor axis and orientation bins per cell.
_DESCRIPTOR_CELLS = 4
_DESCRIPTOR_BINS = 8
#: Half-width of the descriptor window in pixels.
_WINDOW_RADIUS = 8


@dataclass(frozen=True)
class Keypoint:
    """A detected interest point.

    Attributes:
        row: Vertical position in pixels.
        col: Horizontal position in pixels.
        response: Absolute DoG response (keypoint strength).
        scale: Index of the DoG level the keypoint was detected at.
    """

    row: int
    col: int
    response: float
    scale: int


@dataclass
class FrameFeatures:
    """Keypoints and descriptors of one frame."""

    keypoints: List[Keypoint]
    descriptors: np.ndarray

    @property
    def num_keypoints(self) -> int:
        """Number of keypoints detected."""
        return len(self.keypoints)


class SiftLite:
    """SIFT-like feature extractor and matcher.

    Args:
        num_scales: Number of Gaussian-blur levels in the scale stack.
        base_sigma: Blur of the first level.
        contrast_threshold: Minimum absolute DoG response of a keypoint.
        max_keypoints: Keep only the strongest keypoints per frame.
        ratio_threshold: Lowe's ratio-test threshold for matching.
    """

    def __init__(self, num_scales: int = 4, base_sigma: float = 1.2,
                 contrast_threshold: float = 4.0, max_keypoints: int = 200,
                 ratio_threshold: float = 0.8) -> None:
        if num_scales < 3:
            raise ConfigurationError("num_scales must be >= 3 for DoG extrema")
        if not 0.0 < ratio_threshold <= 1.0:
            raise ConfigurationError("ratio_threshold must be in (0, 1]")
        if max_keypoints < 1:
            raise ConfigurationError("max_keypoints must be >= 1")
        self.num_scales = num_scales
        self.base_sigma = base_sigma
        self.contrast_threshold = contrast_threshold
        self.max_keypoints = max_keypoints
        self.ratio_threshold = ratio_threshold

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #
    def _scale_stack(self, plane: np.ndarray) -> List[np.ndarray]:
        sigmas = [self.base_sigma * (2.0 ** (level / 2.0))
                  for level in range(self.num_scales)]
        return [gaussian_blur(plane, sigma) for sigma in sigmas]

    def detect(self, plane: np.ndarray) -> List[Keypoint]:
        """Detect DoG extrema in a luma plane."""
        plane = np.asarray(plane, dtype=np.float64)
        if plane.ndim != 2:
            raise ConfigurationError("detect expects a 2-D luma plane")
        stack = self._scale_stack(plane)
        dogs = [stack[level + 1] - stack[level] for level in range(len(stack) - 1)]
        keypoints: List[Keypoint] = []
        margin = _WINDOW_RADIUS + 1
        for scale, current in enumerate(dogs):
            strong = np.abs(current) > self.contrast_threshold
            if not strong.any():
                continue
            # Spatial 3x3 local-extremum test per DoG level (SIFT-lite keeps
            # the scale stack for response strength but does not require
            # extremality across scales, which would need a denser stack).
            is_max = np.ones_like(strong)
            is_min = np.ones_like(strong)
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dy == 0 and dx == 0:
                        continue
                    shifted = np.roll(np.roll(current, dy, axis=0), dx, axis=1)
                    is_max &= current >= shifted
                    is_min &= current <= shifted
            extrema = strong & (is_max | is_min)
            extrema[:margin, :] = False
            extrema[-margin:, :] = False
            extrema[:, :margin] = False
            extrema[:, -margin:] = False
            rows, cols = np.nonzero(extrema)
            responses = np.abs(current[rows, cols])
            for row, col, response in zip(rows, cols, responses):
                keypoints.append(Keypoint(int(row), int(col), float(response), scale))
        keypoints.sort(key=lambda keypoint: keypoint.response, reverse=True)
        return keypoints[:self.max_keypoints]

    # ------------------------------------------------------------------ #
    # Description
    # ------------------------------------------------------------------ #
    def describe(self, plane: np.ndarray,
                 keypoints: List[Keypoint]) -> np.ndarray:
        """Compute 128-d descriptors for the given keypoints (vectorised)."""
        plane = np.asarray(plane, dtype=np.float64)
        if not keypoints:
            return np.zeros((0, _DESCRIPTOR_CELLS ** 2 * _DESCRIPTOR_BINS))
        magnitude, orientation = gradient_magnitude_orientation(plane)
        radius = _WINDOW_RADIUS
        window = 2 * radius
        offsets = np.arange(-radius, radius)
        rows = np.array([keypoint.row for keypoint in keypoints])[:, None, None]
        cols = np.array([keypoint.col for keypoint in keypoints])[:, None, None]
        row_grid = rows + offsets[None, :, None]
        col_grid = cols + offsets[None, None, :]
        row_grid = np.clip(row_grid, 0, plane.shape[0] - 1)
        col_grid = np.clip(col_grid, 0, plane.shape[1] - 1)
        patch_magnitude = magnitude[row_grid, col_grid]
        patch_orientation = orientation[row_grid, col_grid]
        # Gaussian weighting of the window.
        ys, xs = np.mgrid[-radius:radius, -radius:radius]
        weight = np.exp(-(ys ** 2 + xs ** 2) / (2.0 * (0.5 * window) ** 2))
        weighted = patch_magnitude * weight[None, :, :]
        # Spatial cell and orientation bin of every pixel of every patch.
        cell_size = window // _DESCRIPTOR_CELLS
        cell_row = np.minimum((ys + radius) // cell_size, _DESCRIPTOR_CELLS - 1)
        cell_col = np.minimum((xs + radius) // cell_size, _DESCRIPTOR_CELLS - 1)
        orientation_bin = np.floor(
            patch_orientation / (2.0 * np.pi) * _DESCRIPTOR_BINS).astype(int)
        orientation_bin = np.clip(orientation_bin, 0, _DESCRIPTOR_BINS - 1)
        flat_bin = ((cell_row * _DESCRIPTOR_CELLS + cell_col)[None, :, :]
                    * _DESCRIPTOR_BINS + orientation_bin)
        num_keypoints = len(keypoints)
        descriptor_length = _DESCRIPTOR_CELLS ** 2 * _DESCRIPTOR_BINS
        keypoint_index = np.broadcast_to(
            np.arange(num_keypoints)[:, None, None], flat_bin.shape)
        descriptors = np.zeros((num_keypoints, descriptor_length))
        np.add.at(descriptors, (keypoint_index.ravel(), flat_bin.ravel()),
                  weighted.ravel())
        # Normalise, clip (illumination robustness) and renormalise, as in SIFT.
        norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        descriptors = np.clip(descriptors / norms, 0, 0.2)
        norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        return descriptors / norms

    def extract(self, plane: np.ndarray) -> FrameFeatures:
        """Detect keypoints and compute their descriptors in one call."""
        keypoints = self.detect(plane)
        descriptors = self.describe(plane, keypoints)
        return FrameFeatures(keypoints=keypoints, descriptors=descriptors)

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #
    def match(self, first: FrameFeatures, second: FrameFeatures
              ) -> List[Tuple[int, int, float]]:
        """Match descriptors with a ratio test.

        Returns:
            List of ``(index_in_first, index_in_second, distance)`` matches.
        """
        if first.num_keypoints == 0 or second.num_keypoints == 0:
            return []
        distances = np.linalg.norm(
            first.descriptors[:, None, :] - second.descriptors[None, :, :], axis=2)
        matches: List[Tuple[int, int, float]] = []
        for index in range(first.num_keypoints):
            row = distances[index]
            if row.size == 1:
                best = 0
                if row[best] < 0.7:
                    matches.append((index, int(best), float(row[best])))
                continue
            order = np.argpartition(row, 1)[:2]
            best, runner_up = order[np.argsort(row[order])]
            if row[best] <= self.ratio_threshold * row[runner_up]:
                matches.append((index, int(best), float(row[best])))
        return matches

    def match_fraction(self, first: FrameFeatures, second: FrameFeatures) -> float:
        """Fraction of the first frame's keypoints matched in the second."""
        if first.num_keypoints == 0:
            return 1.0
        return len(self.match(first, second)) / first.num_keypoints


class SiftChangeDetector(ChangeDetector):
    """Change detector based on SIFT-lite feature matching.

    The change score of a frame pair is ``1 - matched_fraction`` where the
    matched fraction counts previous-frame keypoints that found a ratio-test
    match in the current frame; an entering or leaving object removes or
    occludes keypoints and therefore raises the score.
    """

    name = "sift"

    def __init__(self, sift: Optional[SiftLite] = None) -> None:
        self.sift = sift or SiftLite()
        self._previous_features: Optional[FrameFeatures] = None

    def reset(self) -> None:
        self._previous_features = None

    def score_pair(self, previous: np.ndarray, current: np.ndarray) -> float:
        return 1.0 - self.sift.match_fraction(self.sift.extract(previous),
                                              self.sift.extract(current))

    def score_next(self, current: np.ndarray) -> float:
        features = self.sift.extract(np.asarray(current, dtype=np.float64))
        previous = self._previous_features
        self._previous_features = features
        if previous is None:
            return float("inf")
        return 1.0 - self.sift.match_fraction(previous, features)
