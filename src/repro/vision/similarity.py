"""Common interface for decode-based change detectors (the paper's baselines).

NoScope-style filtering decodes every frame, computes an image-similarity
signal between consecutive frames (MSE, SIFT matching), and forwards a frame
to the NN only when the signal crosses a threshold.  This module defines the
shared machinery:

* :class:`ChangeDetector` — per-frame-pair change score (higher = more
  change);
* :func:`score_video` — the change-score series of a whole video;
* :class:`ThresholdSampler` — converts a score series + threshold into the
  set of sampled frame indices;
* :func:`threshold_for_sampling_fraction` — picks the threshold that yields a
  target sampling rate, which is how the paper matches the baselines'
  sampling rate to SiEVE's ("We tune the thresholds for other approaches to
  give the same sampling rate as SiEVE").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..video.raw_video import VideoSource
from .imageops import to_grayscale


class ChangeDetector:
    """Base class for frame-pair change detectors.

    Subclasses implement :meth:`score_pair`; higher scores mean the two
    frames differ more.  Detectors may keep per-stream state (e.g. cached
    features of the previous frame) between :meth:`score_next` calls;
    :meth:`reset` clears it.
    """

    #: Human-readable name used in experiment tables.
    name: str = "change"

    def reset(self) -> None:
        """Clear any per-stream state."""

    def score_pair(self, previous: np.ndarray, current: np.ndarray) -> float:
        """Change score between two luma planes (higher = more change)."""
        raise NotImplementedError

    def score_next(self, current: np.ndarray) -> float:
        """Streaming interface: score the next frame against the previous one.

        The default implementation simply remembers the previous plane and
        delegates to :meth:`score_pair`; detectors with expensive per-frame
        features override this to cache them.
        """
        if not hasattr(self, "_previous_plane"):
            self._previous_plane: Optional[np.ndarray] = None
        previous = self._previous_plane
        self._previous_plane = current
        if previous is None:
            return float("inf")
        return self.score_pair(previous, current)


def score_video(detector: ChangeDetector, video: VideoSource) -> List[float]:
    """Compute the change-score series of a video (first frame scores ``inf``)."""
    detector.reset()
    if hasattr(detector, "_previous_plane"):
        detector._previous_plane = None
    scores: List[float] = []
    for frame in video.frames():
        scores.append(detector.score_next(to_grayscale(frame.data)))
    return scores


@dataclass
class ThresholdSampler:
    """Convert a change-score series into sampled frame indices.

    A frame is sampled when its change score strictly exceeds ``threshold``;
    the first frame of a video is always sampled (its score is infinite).
    ``min_interval`` optionally rate-limits sampling, mirroring the encoder's
    minimum key-frame interval.

    Attributes:
        threshold: Change-score threshold.
        min_interval: Minimum distance between two sampled frames.
    """

    threshold: float
    min_interval: int = 1

    def __post_init__(self) -> None:
        if self.min_interval < 1:
            raise ConfigurationError("min_interval must be >= 1")

    def sample(self, scores: Sequence[float]) -> List[int]:
        """Indices of the frames whose score exceeds the threshold."""
        sampled: List[int] = []
        last = None
        for index, score in enumerate(scores):
            if index == 0 or score > self.threshold:
                if last is None or index - last >= self.min_interval or index == 0:
                    sampled.append(index)
                    last = index
        return sampled


def threshold_for_sampling_fraction(scores: Sequence[float], fraction: float,
                                    min_interval: int = 1) -> float:
    """Find the threshold whose sampling rate best matches ``fraction``.

    The search is over the observed score values (plus infinity), so the
    returned threshold always realises one of the achievable sampling rates;
    the one closest to the target is chosen.

    Args:
        scores: Change-score series of the training video.
        fraction: Target fraction of sampled frames in ``(0, 1]``.
        min_interval: Rate limit passed to the sampler.

    Returns:
        The selected threshold.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    finite = sorted({float(score) for score in scores if np.isfinite(score)})
    candidates = finite + [float("inf")]
    best_threshold = candidates[-1]
    best_error = float("inf")
    total = len(scores)
    for threshold in candidates:
        sampler = ThresholdSampler(threshold=threshold, min_interval=min_interval)
        achieved = len(sampler.sample(scores)) / total
        error = abs(achieved - fraction)
        if error < best_error:
            best_error = error
            best_threshold = threshold
    return best_threshold


def sampled_fraction(scores: Sequence[float], threshold: float,
                     min_interval: int = 1) -> float:
    """Sampling rate achieved by a threshold on a score series."""
    sampler = ThresholdSampler(threshold=threshold, min_interval=min_interval)
    return len(sampler.sample(scores)) / len(scores)
