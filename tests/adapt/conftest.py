"""Shared fixtures for the online-adaptation suite.

The drifting clip is rendered and analysed exactly once per session —
every test here (and the drift soak especially) reuses the same
activities, labels and luma sequence, mirroring how the serving path
computes the analysis pass once per chunk.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
import pytest

from repro.adapt import chunk_scene, mean_luma
from repro.codec.gop import EncoderParameters, StreamingKeyframePlacer
from repro.codec.scenecut import SceneCutAnalyzer
from repro.core.metrics import evaluate_sampling
from repro.core.tuner import SemanticEncoderTuner
from repro.service import FrameChunk
from repro.video import make_scenario
from repro.video.events import EventTimeline
from repro.video.frame import FrameType
from repro.video.synthetic import SyntheticScene

#: Footage seconds per chunk == virtual seconds per push in the soak.
CHUNK_SECONDS = 2.0

#: Kept small enough for CI but long enough that the day->night drift
#: genuinely changes the optimal configuration (pinned empirically).
CLIP_SECONDS = 54.0
RENDER_SCALE = 0.12
CLIP_SEED = 11


@pytest.fixture(scope="session")
def drift_clip():
    """Render + analyse the drifting clip once for the whole suite."""
    profile = make_scenario("drifting", duration_seconds=CLIP_SECONDS,
                            render_scale=RENDER_SCALE, seed=CLIP_SEED)
    scene = SyntheticScene(profile)
    frames = [scene.frame_array(index) for index in range(profile.num_frames)]
    analyzer = SceneCutAnalyzer(precision="exact")
    return {
        "frames": frames,
        "activities": [analyzer.analyze_next(frame) for frame in frames],
        "labels": scene.script.frame_labels(),
        "lumas": [mean_luma(frame) for frame in frames],
        "fps": profile.fps,
    }


def build_drift_chunks(activities, labels, lumas, fps) -> List[FrameChunk]:
    """Slice an analysed clip into scene-carrying stream chunks."""
    per_chunk = int(round(CHUNK_SECONDS * fps))
    chunks = []
    for index in range(len(activities) // per_chunk):
        lo, hi = index * per_chunk, (index + 1) * per_chunk
        scene = chunk_scene(activities[lo:hi], labels[lo:hi],
                            mean_brightness=float(np.mean(lumas[lo:hi])))
        chunks.append(FrameChunk(
            num_frames=per_chunk, frames_for_inference=3,
            edge_seconds=0.05, cloud_seconds=0.02,
            camera_edge_bytes=72_000, edge_cloud_bytes=9_000,
            scene=scene))
    return chunks


@pytest.fixture(scope="session")
def drift_chunks(drift_clip) -> List[FrameChunk]:
    return build_drift_chunks(drift_clip["activities"], drift_clip["labels"],
                              drift_clip["lumas"], drift_clip["fps"])


@pytest.fixture(scope="session")
def frozen_parameters(drift_chunks) -> EncoderParameters:
    """The offline warm-up tune on the bright opening quarter."""
    warm = max(len(drift_chunks) // 4, 3)
    activities = [activity for chunk in drift_chunks[:warm]
                  for activity in chunk.scene.activities]
    labels = [frame for chunk in drift_chunks[:warm]
              for frame in chunk.scene.frame_labels]
    return SemanticEncoderTuner().tune_from_activities(
        activities, EventTimeline.from_frame_labels(labels)).best_parameters


@pytest.fixture(scope="session")
def replay():
    """The schedule-replay scorer, exposed as a fixture (no package
    imports between test modules and conftest)."""
    return replay_schedule


def replay_schedule(chunks: Sequence[FrameChunk],
                    schedule: Sequence[EncoderParameters]):
    """Score a per-chunk parameter schedule over the whole chunk list."""
    placer = StreamingKeyframePlacer(schedule[0])
    keyframes = []
    index = 0
    for chunk, parameters in zip(chunks, schedule):
        placer.parameters = parameters
        for activity in chunk.scene.activities:
            if placer.decide(activity) is FrameType.I:
                keyframes.append(index)
            index += 1
    labels = [frame for chunk in chunks for frame in chunk.scene.frame_labels]
    return evaluate_sampling(EventTimeline.from_frame_labels(labels),
                             keyframes)
