"""Unit tests of the sequential drift detectors (pure, no rendering)."""

import pytest

from repro.adapt import (DriftSignal, PageHinkleyDetector,
                         WindowedZScoreDetector)
from repro.errors import ServiceError


class TestWindowedZScore:
    def test_steady_baseline_never_fires(self):
        detector = WindowedZScoreDetector("novelty", threshold=4.0,
                                          min_std=1e-3)
        samples = [0.010, 0.011, 0.009, 0.010, 0.012, 0.010, 0.011]
        assert all(detector.observe(value) is None for value in samples)

    def test_step_change_fires_with_magnitude(self):
        detector = WindowedZScoreDetector("novelty", threshold=4.0,
                                          min_samples=4, min_std=1e-3)
        for value in (0.010, 0.011, 0.009, 0.010):
            assert detector.observe(value) is None
        signal = detector.observe(0.500)
        assert signal is not None
        assert signal.statistic == "novelty"
        assert signal.kind == "zscore"
        assert signal.magnitude > 4.0
        assert signal.value == 0.500

    def test_firing_samples_not_absorbed_into_baseline(self):
        # A sustained shift keeps firing until the controller resets the
        # detector — the baseline keeps describing the pre-drift regime.
        detector = WindowedZScoreDetector("novelty", threshold=4.0,
                                          min_samples=4, min_std=1e-3)
        for value in (0.010, 0.011, 0.009, 0.010):
            detector.observe(value)
        assert detector.observe(0.500) is not None
        assert detector.observe(0.500) is not None
        assert detector.observe(0.500) is not None

    def test_reset_requires_fresh_baseline(self):
        detector = WindowedZScoreDetector("novelty", threshold=4.0,
                                          min_samples=4, min_std=1e-3)
        for value in (0.010, 0.011, 0.009, 0.010):
            detector.observe(value)
        assert detector.observe(0.500) is not None
        detector.reset()
        # Below min_samples again: the same outlier cannot fire.
        assert detector.observe(0.500) is None

    def test_min_samples_gate(self):
        detector = WindowedZScoreDetector("novelty", threshold=1.0,
                                          min_samples=4, min_std=1e-3)
        assert detector.observe(0.0) is None
        assert detector.observe(0.0) is None
        assert detector.observe(0.0) is None
        # Only 3 baseline samples: still gated despite the huge jump.
        assert detector.observe(100.0) is None

    def test_nan_samples_are_skipped(self):
        detector = WindowedZScoreDetector("brightness", threshold=4.0,
                                          min_samples=4)
        for value in (100.0, 101.0, 99.0, 100.0):
            detector.observe(value)
        assert detector.observe(float("nan")) is None
        assert detector.observe(10.0) is not None

    def test_min_std_floor_bounds_noise_z(self):
        # A bit-identical baseline would give std 0 and infinite z; the
        # floor keeps tiny jitter from counting as drift.
        detector = WindowedZScoreDetector("novelty", threshold=4.0,
                                          min_samples=4, min_std=0.1)
        for _ in range(5):
            detector.observe(0.5)
        assert detector.observe(0.6) is None  # z = 0.1/0.1 = 1 < 4

    def test_validation(self):
        with pytest.raises(ServiceError):
            WindowedZScoreDetector("x", threshold=0.0)
        with pytest.raises(ServiceError):
            WindowedZScoreDetector("x", window=1)
        with pytest.raises(ServiceError):
            WindowedZScoreDetector("x", min_samples=1)
        with pytest.raises(ServiceError):
            WindowedZScoreDetector("x", min_std=0.0)


class TestPageHinkley:
    def test_steady_signal_never_fires(self):
        detector = PageHinkleyDetector("brightness", delta=1.0,
                                       threshold=20.0)
        for value in [100.0, 100.5, 99.5, 100.2, 99.8] * 10:
            assert detector.observe(value) is None

    def test_slow_downward_ramp_accumulates_and_fires(self):
        # Each step is within noise; the cumulative deviation is not —
        # exactly the day->night dimming a windowed z-score absorbs.
        detector = PageHinkleyDetector("brightness", delta=0.5,
                                       threshold=20.0)
        fired_at = None
        for step in range(60):
            signal = detector.observe(120.0 - 1.5 * step)
            if signal is not None:
                fired_at = step
                break
        assert fired_at is not None
        assert signal.kind == "page-hinkley"
        assert signal.magnitude > 20.0

    def test_two_sided_upward_ramp_fires_too(self):
        detector = PageHinkleyDetector("brightness", delta=0.5,
                                       threshold=20.0)
        assert any(detector.observe(60.0 + 1.5 * step) is not None
                   for step in range(60))

    def test_min_samples_gate(self):
        detector = PageHinkleyDetector("brightness", delta=0.0,
                                       threshold=0.5, min_samples=5)
        assert detector.observe(0.0) is None
        # Count 2 < 5: gated even though the sums already exceed.
        assert detector.observe(100.0) is None

    def test_reset_clears_accumulation(self):
        detector = PageHinkleyDetector("brightness", delta=0.5,
                                       threshold=20.0)
        for step in range(40):
            detector.observe(120.0 - 1.5 * step)
        detector.reset()
        for value in [60.0, 60.5, 59.5, 60.0]:
            assert detector.observe(value) is None

    def test_nan_samples_are_skipped(self):
        detector = PageHinkleyDetector("brightness", delta=0.5,
                                       threshold=20.0, min_samples=2)
        assert detector.observe(float("nan")) is None
        assert detector._count == 0

    def test_validation(self):
        with pytest.raises(ServiceError):
            PageHinkleyDetector("x", delta=-0.1)
        with pytest.raises(ServiceError):
            PageHinkleyDetector("x", threshold=0.0)
        with pytest.raises(ServiceError):
            PageHinkleyDetector("x", min_samples=1)


class TestDriftSignal:
    def test_describe_is_deterministic_and_compact(self):
        signal = DriftSignal(statistic="brightness", kind="page-hinkley",
                             magnitude=36.73191, value=63.2)
        assert signal.describe() == "brightness:page-hinkley=36.732"
