"""The drift soak: online adaptation in the serving path, end to end.

The ``drifting`` scenario morphs a bright highway feed into night; a
tuner frozen on the opening split rots while the adaptive controller
re-tunes the live session.  The suite pins the whole ISSUE contract:

* the controller confirms drift and applies at least one retune through
  ``retune_session`` without dropping the stream;
* same-seed runs produce byte-identical retune histories, under the
  virtual and the real-time clock alike;
* the adaptive schedule's full-clip F1 strictly beats the frozen
  baseline's (the accuracy-vs-bitrate win);
* with the controller disabled (the default), scene payloads are inert
  and the serving path is bit-identical to the seed.
"""

from __future__ import annotations

import dataclasses

from repro.adapt import AdaptiveConfig
from repro.faults import ResilienceConfig
from repro.service import (ChunkFeeder, FrameChunk, RealTimeClock,
                           ServiceStatus, SessionState, StreamingService,
                           VirtualClock)

TOLERANCE = 1e-6
CAMERA = "cam-drift"
CHUNK_SECONDS = 2.0


def run_soak(chunks, frozen, clock=None, adaptive=True, resilience=None):
    service = StreamingService(
        clock=clock if clock is not None else VirtualClock(),
        adaptive=(AdaptiveConfig(initial_parameters=frozen)
                  if adaptive else None),
        resilience=resilience)
    service.open_session(CAMERA)
    ChunkFeeder(service, CAMERA, chunks,
                period_seconds=CHUNK_SECONDS).start(at=0.0)
    service.drain()
    return service


def history_document(service):
    lines = list(service.adaptive.history_lines())
    lines.extend(service.adaptive.trace.lines())
    for name, value in sorted(service.adaptive.counters().items()):
        lines.append(f"{name}={value}")
    return lines


def adaptive_schedule(service, frozen, num_chunks):
    """Reconstruct per-chunk parameters from the versioned audit table."""
    schedule = [frozen] * num_chunks
    for record in service.adaptive.table.history(CAMERA):
        if record.trigger == "initial":
            continue
        first = int(round(record.time / CHUNK_SECONDS)) + 1
        for index in range(min(first, num_chunks), num_chunks):
            schedule[index] = record.new
    return schedule


class TestDriftSoak:
    def test_retunes_apply_without_dropping_the_stream(
            self, drift_chunks, frozen_parameters):
        service = run_soak(drift_chunks, frozen_parameters)
        assert service.adaptive.retunes_applied >= 1
        session = service.ingest.sessions[CAMERA]
        # The stream survived the retunes: all chunks pushed, completed,
        # drained to a clean close.
        assert session.state is SessionState.CLOSED
        assert session.chunks_pushed == len(drift_chunks)
        assert session.chunks_completed == len(drift_chunks)
        assert session.close_reason == "client"
        assert session.parameter_version == service.adaptive.retunes_applied
        assert session.parameters is not None
        assert session.parameters != frozen_parameters

    def test_versioned_history_is_auditable(self, drift_chunks,
                                            frozen_parameters):
        service = run_soak(drift_chunks, frozen_parameters)
        records = service.adaptive.table.history(CAMERA)
        # v1 is the initial deployment; later versions chain old -> new.
        assert records[0].version == 1
        assert records[0].trigger == "initial"
        assert records[0].old is None
        for previous, record in zip(records, records[1:]):
            assert record.version == previous.version + 1
            assert record.old == previous.new
            assert record.trigger != "initial"
            assert record.score == record.score  # applied => real F1
        assert service.adaptive.table.lookup(CAMERA) == records[-1].new

    def test_same_seed_reruns_are_byte_identical(self, drift_chunks,
                                                 frozen_parameters):
        first = run_soak(drift_chunks, frozen_parameters)
        second = run_soak(drift_chunks, frozen_parameters)
        assert history_document(first) == history_document(second)
        assert first.fleet_report().parity_mismatches(
            second.fleet_report(), TOLERANCE) == []

    def test_virtual_and_real_time_histories_are_identical(
            self, drift_chunks, frozen_parameters):
        baseline = run_soak(drift_chunks, frozen_parameters)
        live = run_soak(drift_chunks, frozen_parameters,
                        clock=RealTimeClock(speedup=1e6))
        assert history_document(baseline) == history_document(live)
        assert baseline.fleet_report().parity_mismatches(
            live.fleet_report(), TOLERANCE) == []
        assert (baseline.scheduler.events_processed
                == live.scheduler.events_processed)

    def test_adaptive_beats_frozen_on_the_drifting_clip(
            self, drift_chunks, frozen_parameters, replay):
        service = run_soak(drift_chunks, frozen_parameters)
        frozen_score = replay(drift_chunks,
                              [frozen_parameters] * len(drift_chunks))
        adaptive_score = replay(
            drift_chunks,
            adaptive_schedule(service, frozen_parameters, len(drift_chunks)))
        assert adaptive_score.f1 > frozen_score.f1
        assert adaptive_score.accuracy > frozen_score.accuracy

    def test_status_surfaces_the_adaptation(self, drift_chunks,
                                            frozen_parameters):
        service = run_soak(drift_chunks, frozen_parameters)
        status = service.status()
        assert status.retune_counters.get("retunes_applied", 0) >= 1
        assert any("session-retuned" not in line and "trigger=" in line
                   for line in status.retune_history)
        assert status.health_history  # counters were non-empty
        assert status.health_history[-1].counters == {
            **status.fault_counters, **status.retune_counters}
        snapshot = next(s for s in status.sessions
                        if s.session_id == CAMERA)
        assert snapshot.parameter_version >= 1
        # The adaptive fields survive the lossless wire format.
        assert ServiceStatus.from_json(status.to_json()).to_json() == (
            status.to_json())

    def test_retunes_mirror_into_the_recovery_trace(self, drift_chunks,
                                                    frozen_parameters):
        # With a fault driver installed (resilience knobs, no plan), the
        # controller mirrors its records into the recovery trace.
        service = run_soak(
            drift_chunks, frozen_parameters,
            resilience=ResilienceConfig(stall_timeout_seconds=1e6,
                                        watchdog_period_seconds=1e6))
        lines = service.recovery_trace.lines()
        assert any("session-retuned" in line for line in lines)

    def test_controller_off_scene_payloads_are_inert(self, drift_chunks,
                                                     frozen_parameters):
        # The seed path: no AdaptiveConfig => no controller, and chunks
        # carrying scenes behave bit-identically to scene-less chunks.
        bare = [dataclasses.replace(chunk, scene=None)
                for chunk in drift_chunks]
        with_scene = run_soak(drift_chunks, frozen_parameters,
                              adaptive=False)
        without_scene = run_soak(bare, frozen_parameters, adaptive=False)
        assert with_scene.adaptive is None
        assert with_scene.fleet_report().parity_mismatches(
            without_scene.fleet_report(), TOLERANCE) == []
        assert (with_scene.scheduler.events_processed
                == without_scene.scheduler.events_processed)
        status = with_scene.status()
        assert status.retune_counters == {}
        assert status.retune_history == ()
        assert status.health_history == ()
        session = with_scene.ingest.sessions[CAMERA]
        assert session.parameter_version == 0
        assert session.parameters is None

    def test_scene_chunks_are_inert_without_scene_field_set(self):
        # A plain seed-shaped chunk (scene defaulted) keeps working.
        chunk = FrameChunk(num_frames=30, frames_for_inference=3,
                           edge_seconds=0.1, cloud_seconds=0.05,
                           camera_edge_bytes=1000, edge_cloud_bytes=100)
        assert chunk.scene is None
