"""DriftMonitor: hysteresis, cooldown, determinism, tie no-ops."""

import dataclasses

import pytest

from repro.adapt import (AdaptiveConfig, ChunkScene, DriftMonitor, SceneStats,
                         retune_history)
from repro.codec.gop import EncoderParameters
from repro.codec.scenecut import FrameActivity
from repro.errors import ServiceError

#: Matches the conftest chunking: one chunk per 2 virtual seconds.
CHUNK_SECONDS = 2.0


def flat_scene(novelty: float, brightness: float = 100.0,
               frames: int = 4) -> ChunkScene:
    """A hand-built chunk whose every frame carries ``novelty``."""
    activities = tuple(
        FrameActivity(frame_index=index, inter_cost=10.0, intra_cost=100.0,
                      novel_block_fraction=novelty,
                      moving_block_fraction=0.0)
        for index in range(frames))
    return ChunkScene(
        stats=SceneStats.from_activities(activities,
                                         mean_brightness=brightness),
        activities=activities,
        frame_labels=(frozenset(),) * frames)


class TestAdaptiveConfig:
    def test_validation(self):
        with pytest.raises(ServiceError):
            AdaptiveConfig(window_chunks=0)
        with pytest.raises(ServiceError):
            AdaptiveConfig(window_chunks=4, min_window_chunks=5)
        with pytest.raises(ServiceError):
            AdaptiveConfig(confirm_chunks=0)
        with pytest.raises(ServiceError):
            AdaptiveConfig(cooldown_seconds=-1.0)


class TestHysteresisAndCooldown:
    CONFIG = AdaptiveConfig(confirm_chunks=2, min_window_chunks=3,
                            cooldown_seconds=10.0, detector_min_samples=4,
                            novelty_threshold=4.0)

    def feed(self, monitor, scenes):
        return [monitor.observe(scene, now=index * CHUNK_SECONDS)
                for index, scene in enumerate(scenes)]

    def test_single_chunk_spike_is_not_confirmed(self):
        monitor = DriftMonitor(self.CONFIG)
        scenes = [flat_scene(0.010), flat_scene(0.011), flat_scene(0.009),
                  flat_scene(0.010), flat_scene(0.500), flat_scene(0.010),
                  flat_scene(0.011)]
        assert all(decision is None for decision in self.feed(monitor, scenes))

    def test_sustained_shift_is_confirmed_once(self):
        monitor = DriftMonitor(self.CONFIG)
        scenes = ([flat_scene(0.010), flat_scene(0.011), flat_scene(0.009),
                   flat_scene(0.010)]
                  + [flat_scene(0.500)] * 4)
        decisions = [d for d in self.feed(monitor, scenes) if d is not None]
        # Confirmed at the second drifting chunk; the cooldown (10 s = 5
        # chunks) swallows the rest of the burst.
        assert len(decisions) == 1
        assert decisions[0].time == 5 * CHUNK_SECONDS
        assert "novelty:zscore" in decisions[0].trigger

    def test_cooldown_expiry_allows_a_second_confirmation(self):
        # After a confirmation the detectors reset, so the sustained
        # 0.500 level becomes the new baseline; a second *shift* past
        # the cooldown confirms again.
        config = dataclasses.replace(self.CONFIG, cooldown_seconds=4.0)
        monitor = DriftMonitor(config)
        scenes = ([flat_scene(0.010)] * 4 + [flat_scene(0.500)] * 6
                  + [flat_scene(2.0)] * 2)
        decisions = [d for d in self.feed(monitor, scenes) if d is not None]
        assert len(decisions) == 2
        assert decisions[0].time == 5 * CHUNK_SECONDS
        assert decisions[1].time == 11 * CHUNK_SECONDS

    def test_tie_equal_winner_is_a_noop(self):
        # Every frame has identical novelty and no labels, so every grid
        # cell ties: the winner must not be applied and the incumbent
        # parameters must survive.
        initial = EncoderParameters(gop_size=250, scenecut_threshold=100)
        config = dataclasses.replace(self.CONFIG,
                                     initial_parameters=initial)
        monitor = DriftMonitor(config)
        scenes = ([flat_scene(0.010)] * 4 + [flat_scene(0.500)] * 2)
        decisions = [d for d in self.feed(monitor, scenes) if d is not None]
        assert len(decisions) == 1
        assert decisions[0].applied is False
        assert monitor.current == initial

    def test_retune_history_skips_unapplied_decisions(self):
        monitor = DriftMonitor(self.CONFIG)
        scenes = ([flat_scene(0.010)] * 4 + [flat_scene(0.500)] * 2)
        decisions = tuple(d for d in self.feed(monitor, scenes)
                          if d is not None)
        records = retune_history(decisions)
        assert len(records) == sum(1 for d in decisions if d.applied)


class TestMonitorOnDriftingClip:
    def decisions_of(self, chunks, frozen):
        monitor = DriftMonitor(AdaptiveConfig(initial_parameters=frozen))
        out = []
        for index, chunk in enumerate(chunks):
            decision = monitor.observe(chunk.scene,
                                       now=index * CHUNK_SECONDS)
            if decision is not None:
                out.append(decision)
        return out, monitor

    def test_drift_confirms_and_applies_a_retune(self, drift_chunks,
                                                 frozen_parameters):
        decisions, monitor = self.decisions_of(drift_chunks,
                                               frozen_parameters)
        assert decisions, "the drifting clip confirmed no drift at all"
        applied = [d for d in decisions if d.applied]
        assert applied, "no confirmed drift produced an applied retune"
        # The applied winner strictly beat the incumbent on its window
        # and the monitor now carries it.
        assert applied[-1].new_f1 > applied[-1].old_f1
        assert monitor.current == applied[-1].new
        assert monitor.current != frozen_parameters

    def test_same_chunks_same_decisions(self, drift_chunks,
                                        frozen_parameters):
        first, _ = self.decisions_of(drift_chunks, frozen_parameters)
        second, _ = self.decisions_of(drift_chunks, frozen_parameters)
        assert first == second  # frozen dataclasses: exact field equality
