"""Unit tests of the per-chunk scene statistics feeding the detectors."""

import math

import numpy as np
import pytest

from repro.adapt import ChunkScene, SceneStats, chunk_scene, mean_luma
from repro.adapt.signals import REFERENCE_SCENECUT
from repro.codec.scenecut import FrameActivity, scenecut_score_threshold
from repro.errors import ServiceError


def activity(index: int, novelty: float,
             is_first: bool = False) -> FrameActivity:
    return FrameActivity(frame_index=index, inter_cost=10.0, intra_cost=100.0,
                         novel_block_fraction=novelty,
                         moving_block_fraction=0.0, is_first=is_first)


class TestSceneStats:
    def test_first_frame_is_excluded_from_novelty(self):
        # is_first frames carry a synthetic novelty of 1.0 that would
        # poison the mean and the cut rate.
        stats = SceneStats.from_activities([
            activity(0, 1.0, is_first=True),
            activity(1, 0.02), activity(2, 0.04)])
        assert stats.num_frames == 3
        assert stats.mean_novelty == pytest.approx(0.03)

    def test_cut_rate_counts_reference_threshold_crossings(self):
        threshold = scenecut_score_threshold(REFERENCE_SCENECUT)
        below, above = threshold * 0.5, threshold * 2.0
        stats = SceneStats.from_activities([
            activity(0, below), activity(1, above),
            activity(2, below), activity(3, above)])
        assert stats.scenecut_rate == pytest.approx(0.5)

    def test_all_first_frames_degenerate_to_zero(self):
        stats = SceneStats.from_activities([activity(0, 1.0, is_first=True)])
        assert stats.mean_novelty == 0.0
        assert stats.scenecut_rate == 0.0

    def test_brightness_defaults_to_nan(self):
        stats = SceneStats.from_activities([activity(0, 0.1)])
        assert math.isnan(stats.mean_brightness)
        lit = SceneStats.from_activities([activity(0, 0.1)],
                                         mean_brightness=123.0)
        assert lit.mean_brightness == 123.0

    def test_validation(self):
        with pytest.raises(ServiceError):
            SceneStats.from_activities([])
        with pytest.raises(ServiceError):
            SceneStats(num_frames=0, mean_novelty=0.0, scenecut_rate=0.0)
        with pytest.raises(ServiceError):
            SceneStats(num_frames=1, mean_novelty=0.0, scenecut_rate=1.5)


class TestChunkScene:
    def test_chunk_scene_builder_freezes_labels(self):
        scene = chunk_scene([activity(0, 0.1), activity(1, 0.2)],
                            [["car"], []], mean_brightness=100.0)
        assert scene.frame_labels == (frozenset({"car"}), frozenset())
        assert scene.stats.num_frames == 2

    def test_length_mismatch_is_rejected(self):
        with pytest.raises(ServiceError):
            ChunkScene(stats=SceneStats.from_activities([activity(0, 0.1)]),
                       activities=(activity(0, 0.1),),
                       frame_labels=(frozenset(), frozenset()))
        with pytest.raises(ServiceError):
            ChunkScene(stats=SceneStats(num_frames=2, mean_novelty=0.0,
                                        scenecut_rate=0.0),
                       activities=(activity(0, 0.1),),
                       frame_labels=(frozenset(),))


class TestMeanLuma:
    def test_mean_luma_matches_numpy_mean(self):
        frame = np.arange(12, dtype=np.uint8).reshape(3, 4)
        assert mean_luma(frame) == pytest.approx(float(frame.mean()))

    def test_empty_frame_is_nan(self):
        assert math.isnan(mean_luma(np.zeros((0, 0), dtype=np.uint8)))
