"""Tests for the simulated cluster: cost model, nodes, storage, edge/cloud."""

import pytest

from repro.cluster import (Camera, CloudServer, ComputeNode, CostModel, EdgeServer,
                           EdgeStorage, ResultDatabase, default_camera_node,
                           default_cloud_node, default_edge_node)
from repro.codec import EncoderParameters
from repro.errors import ClusterError
from repro.net import NetworkLink
from repro.nn import OracleDetector
from repro.video import RESOLUTION_1080P, RESOLUTION_400P


class TestCostModel:
    def test_calibrated_seek_and_decode_at_1080p(self):
        model = CostModel()
        assert model.seek_seconds(1000, RESOLUTION_1080P) == pytest.approx(0.43)
        assert model.decode_seconds(1000, RESOLUTION_1080P) == pytest.approx(11.0)

    def test_resolution_scaling(self):
        model = CostModel()
        ratio = (model.decode_seconds(100, RESOLUTION_1080P)
                 / model.decode_seconds(100, RESOLUTION_400P))
        assert ratio == pytest.approx(RESOLUTION_1080P.pixels / RESOLUTION_400P.pixels)

    def test_speed_factor(self):
        model = CostModel()
        assert model.seek_seconds(100, RESOLUTION_1080P, speed_factor=2.0) == \
            pytest.approx(model.seek_seconds(100, RESOLUTION_1080P) / 2.0)

    def test_event_detection_fps_matches_table3_shape(self):
        model = CostModel()
        sieve = model.event_detection_fps("sieve", RESOLUTION_1080P)
        mse = model.event_detection_fps("mse", RESOLUTION_1080P)
        sift = model.event_detection_fps("sift", RESOLUTION_1080P)
        assert 2000 < sieve < 2600          # paper: 2300 fps
        assert 15 < mse < 30                # paper: 22 fps
        assert 10 < sift < 20               # paper: 16 fps
        assert 90 < sieve / mse < 180       # paper: ~104x
        assert 120 < sieve / sift < 220     # paper: ~142x

    def test_nn_costs(self):
        model = CostModel()
        assert model.nn_seconds(10, "edge") > model.nn_seconds(10, "cloud")
        with pytest.raises(ClusterError):
            model.nn_seconds(1, "gpu-farm")
        with pytest.raises(ClusterError):
            model.event_detection_fps("magic", RESOLUTION_1080P)

    def test_invalid_inputs(self):
        model = CostModel()
        with pytest.raises(ClusterError):
            model.decode_seconds(-1, RESOLUTION_1080P)
        with pytest.raises(ClusterError):
            model.decode_seconds(1, RESOLUTION_1080P, speed_factor=0)


class TestNodes:
    def test_roles_and_charging(self):
        node = default_edge_node()
        assert node.role == "edge"
        node.charge(1.5)
        node.charge(0.5)
        assert node.busy_seconds == pytest.approx(2.0)
        node.reset()
        assert node.busy_seconds == 0.0
        with pytest.raises(ClusterError):
            node.charge(-1.0)

    def test_defaults(self):
        assert default_cloud_node().speed_factor > default_edge_node().speed_factor
        assert default_camera_node("c").speed_factor < 1.0
        with pytest.raises(ClusterError):
            ComputeNode(name="x", role="mainframe")


class TestStorage:
    def test_store_retrieve_and_sizes(self, tiny_encoded):
        storage = EdgeStorage()
        storage.store(tiny_encoded)
        assert "tiny" in storage
        assert storage.used_bytes == tiny_encoded.total_size_bytes
        assert storage.retrieve("tiny") is tiny_encoded
        storage.discard("tiny")
        assert "tiny" not in storage
        with pytest.raises(ClusterError):
            storage.retrieve("tiny")

    def test_capacity_enforced(self, tiny_encoded):
        storage = EdgeStorage(capacity_bytes=tiny_encoded.total_size_bytes // 2)
        with pytest.raises(ClusterError):
            storage.store(tiny_encoded)

    def test_gop_for_event(self, tiny_encoded):
        storage = EdgeStorage()
        storage.store(tiny_encoded)
        keyframes = tiny_encoded.keyframe_indices
        target = keyframes[1] + 1 if len(keyframes) > 1 else 0
        start, frames = storage.gop_for_event("tiny", target)
        assert start in keyframes
        assert frames[0].is_keyframe
        assert all(not frame.is_keyframe for frame in frames[1:])


class TestResultDatabase:
    def test_record_and_query(self):
        database = ResultDatabase()
        database.record("v", 0, {"car"})
        database.record("v", 5, set())
        database.record("w", 0, {"person"})
        assert database.labels_for("v", 0) == frozenset({"car"})
        assert database.labels_for("v", 1) is None
        assert [row.frame_index for row in database.records_for_video("v")] == [0, 5]
        assert database.frames_with_label("v", "car") == [0]
        assert database.video_names() == ["v", "w"]
        assert len(database) == 3
        database.clear()
        assert len(database) == 0


class TestEdgeAndCloudServers:
    def test_edge_seek_and_queue(self, tiny_encoded):
        edge = EdgeServer()
        edge.ingest(tiny_encoded)
        keyframes, stats, seconds = edge.seek_iframes(tiny_encoded)
        assert len(keyframes) == tiny_encoded.num_keyframes
        assert edge.queued_events == len(keyframes)
        assert seconds > 0 and edge.node.busy_seconds == pytest.approx(seconds)
        drained = edge.drain_event_queue()
        assert len(drained) == len(keyframes) and edge.queued_events == 0

    def test_edge_charges_are_cumulative(self, tiny_encoded):
        edge = EdgeServer()
        resolution = tiny_encoded.metadata.resolution
        total = (edge.decode_full_video(tiny_encoded)
                 + edge.run_mse_filter(tiny_encoded.num_frames, resolution)
                 + edge.resize_frames(5) + edge.run_edge_nn(5))
        assert edge.node.busy_seconds == pytest.approx(total)

    def test_cloud_inference_and_results(self, tiny_encoded, tiny_timeline):
        cloud = CloudServer()
        keyframes, stats, _ = cloud.seek_iframes(tiny_encoded)
        written = cloud.record_labels("tiny", OracleDetector(tiny_timeline),
                                      [frame.index for frame in keyframes])
        assert written == len(keyframes)
        assert len(cloud.results) == written
        first = keyframes[0].index
        assert cloud.results.labels_for("tiny", first) == tiny_timeline.labels_at(first)
        assert cloud.run_cloud_nn(10) < EdgeServer().run_edge_nn(10)

    def test_role_enforcement(self):
        with pytest.raises(ClusterError):
            EdgeServer(node=default_cloud_node())
        with pytest.raises(ClusterError):
            CloudServer(node=default_edge_node())


class TestCamera:
    def test_camera_capture_encode_stream(self, tiny_profile):
        camera = Camera(name="tiny-cam", profile=tiny_profile)
        semantic = EncoderParameters(gop_size=500, scenecut_threshold=250)
        camera.configure_encoder(semantic)
        link = NetworkLink("camera-edge", bandwidth_mbps=100.0)
        encoded = camera.stream_to_edge(link)
        assert encoded.parameters == semantic
        assert link.total_bytes == encoded.total_size_bytes
        assert camera.ground_truth.num_frames == tiny_profile.num_frames
        # Cached encodings are reused for the same parameters.
        assert camera.encode(semantic) is encoded
