"""Tests for the multi-edge fleet orchestrator and placement policies."""

import math

import pytest

from repro.cluster import (CameraJob, FleetOrchestrator, PlacementPolicy,
                           sweep_edge_counts)
from repro.config import SystemConfig
from repro.errors import ClusterError


def make_job(camera, edge_seconds=1.0, cloud_seconds=0.5,
             camera_edge_bytes=1_000_000, edge_cloud_bytes=100_000,
             num_frames=300, samples=12):
    return CameraJob(camera=camera, video=camera, num_frames=num_frames,
                     frames_for_inference=samples, edge_seconds=edge_seconds,
                     cloud_seconds=cloud_seconds,
                     camera_edge_bytes=camera_edge_bytes,
                     edge_cloud_bytes=edge_cloud_bytes)


def make_fleet_jobs(count=16):
    """A moderately heterogeneous fleet (edge load cycles 0.6..2.1 s)."""
    return [make_job(f"cam-{index:02d}", edge_seconds=0.6 + 0.3 * (index % 6),
                     cloud_seconds=0.3 + 0.1 * (index % 4))
            for index in range(count)]


class TestValidation:
    def test_empty_fleet_produces_well_formed_report(self):
        # Regression: report assembly used to crash on an empty fleet
        # (np.percentile over an empty latency list) — an admission layer
        # that rejects every camera must still get a usable report back.
        for workers in (1, 2):
            report = FleetOrchestrator(
                [], num_edge_servers=2, fleet_workers=workers).run()
            assert report.num_cameras == 0
            assert report.makespan_seconds == 0.0
            assert report.aggregate_throughput_fps == 0.0
            assert report.total_frames == 0
            assert report.outcomes == []
            assert report.assignments == {}
            assert len(report.edge_tiers) == 2
            assert all(math.isnan(value)
                       for value in report.latency_percentiles.values())
            assert report.cloud_tier.completed == 0
            row = report.as_dict()  # the flat view stays well-formed too
            assert row["num_cameras"] == 0.0
            assert report.parity_mismatches(report) == []

    def test_duplicate_camera_names_rejected(self):
        with pytest.raises(ClusterError):
            FleetOrchestrator([make_job("cam"), make_job("cam")])

    def test_bad_parameters_rejected(self):
        jobs = [make_job("cam")]
        with pytest.raises(ClusterError):
            FleetOrchestrator(jobs, num_edge_servers=0)
        with pytest.raises(ClusterError):
            FleetOrchestrator(jobs, edge_workers=0)
        with pytest.raises(ClusterError):
            FleetOrchestrator(jobs, cloud_workers=0)
        with pytest.raises(ClusterError):
            FleetOrchestrator(jobs, arrival_jitter_seconds=-1.0)
        with pytest.raises(ClusterError):
            FleetOrchestrator(jobs, policy="sharpest-edge-first")

    def test_negative_job_fields_rejected(self):
        with pytest.raises(ClusterError):
            make_job("cam", edge_seconds=-1.0)
        with pytest.raises(ClusterError):
            make_job("cam", camera_edge_bytes=-1)

    def test_policy_from_name_accepts_value_and_name(self):
        assert PlacementPolicy.from_name("least-loaded") is \
            PlacementPolicy.LEAST_LOADED
        assert PlacementPolicy.from_name("LEAST_LOADED") is \
            PlacementPolicy.LEAST_LOADED
        assert PlacementPolicy.from_name(PlacementPolicy.ROUND_ROBIN) is \
            PlacementPolicy.ROUND_ROBIN


class TestPlacement:
    def test_round_robin_cycles_edges(self):
        jobs = make_fleet_jobs(6)
        orchestrator = FleetOrchestrator(jobs, num_edge_servers=3,
                                         policy=PlacementPolicy.ROUND_ROBIN)
        assignments = orchestrator.assign()
        assert [assignments[job.camera] for job in jobs] == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_balances_compute(self):
        jobs = [make_job("heavy", edge_seconds=10.0),
                make_job("light-1", edge_seconds=1.0),
                make_job("light-2", edge_seconds=1.0),
                make_job("light-3", edge_seconds=1.0)]
        orchestrator = FleetOrchestrator(jobs, num_edge_servers=2,
                                         policy=PlacementPolicy.LEAST_LOADED)
        assignments = orchestrator.assign()
        # All light cameras dodge the edge holding the heavy one.
        assert assignments["heavy"] == 0
        assert {assignments["light-1"], assignments["light-2"],
                assignments["light-3"]} == {1}

    def test_bandwidth_aware_sees_transfer_load(self):
        # Same compute everywhere; one camera ships 100x the bytes, so the
        # bandwidth-aware policy isolates it while least-loaded (compute
        # only) would tie-break both heavy-uplink cameras onto edge 0 and 1
        # by arrival order.
        jobs = [make_job("chatty", edge_cloud_bytes=50_000_000),
                make_job("quiet-1"), make_job("quiet-2"), make_job("quiet-3")]
        orchestrator = FleetOrchestrator(jobs, num_edge_servers=2,
                                         policy=PlacementPolicy.BANDWIDTH_AWARE)
        assignments = orchestrator.assign()
        assert assignments["chatty"] == 0
        assert {assignments["quiet-1"], assignments["quiet-2"],
                assignments["quiet-3"]} == {1}


class TestFleetSimulation:
    def test_single_edge_totals_match_job_sums(self):
        jobs = make_fleet_jobs(5)
        report = FleetOrchestrator(jobs, num_edge_servers=1).run()
        assert report.total_frames == sum(job.num_frames for job in jobs)
        assert report.edge_busy_seconds == pytest.approx(
            sum(job.edge_seconds for job in jobs))
        assert report.cloud_busy_seconds == pytest.approx(
            sum(job.cloud_seconds for job in jobs))
        assert report.camera_edge_bytes == sum(job.camera_edge_bytes
                                               for job in jobs)
        assert report.edge_cloud_bytes == sum(job.edge_cloud_bytes
                                              for job in jobs)
        assert report.makespan_seconds > 0
        assert report.outcomes[-1].end_seconds <= report.makespan_seconds

    def test_throughput_monotone_in_edge_count(self):
        jobs = make_fleet_jobs(16)
        for policy in PlacementPolicy:
            reports = sweep_edge_counts(jobs, (1, 2, 4, 8), policy=policy)
            fps = [reports[count].aggregate_throughput_fps
                   for count in sorted(reports)]
            assert fps == sorted(fps), (policy, fps)
            # Adding edges reduces the makespan for this balanced fleet.
            assert reports[8].makespan_seconds < reports[1].makespan_seconds

    def test_busy_totals_are_schedule_invariant(self):
        jobs = make_fleet_jobs(12)
        single = FleetOrchestrator(jobs, num_edge_servers=1).run()
        fleet = FleetOrchestrator(jobs, num_edge_servers=4).run()
        assert fleet.edge_busy_seconds == pytest.approx(single.edge_busy_seconds)
        assert fleet.cloud_busy_seconds == pytest.approx(
            single.cloud_busy_seconds)
        assert fleet.edge_cloud_bytes == single.edge_cloud_bytes
        assert fleet.camera_edge_bytes == single.camera_edge_bytes

    def test_utilisation_and_queue_metrics(self):
        jobs = make_fleet_jobs(8)
        report = FleetOrchestrator(jobs, num_edge_servers=2).run()
        for tier in report.edge_tiers + report.wan_tiers + [report.cloud_tier]:
            assert 0.0 <= tier.utilisation <= 1.0
            assert tier.max_queue_depth >= 0
        assert 0.0 < report.mean_edge_utilisation <= 1.0
        # A 4-cameras-per-edge fleet necessarily queues somewhere on the edge.
        assert max(tier.max_queue_depth for tier in report.edge_tiers) > 0
        latencies = report.latency_percentiles
        assert latencies[50] <= latencies[95] <= latencies[99]
        assert all(value > 0 for value in latencies.values())

    def test_contention_inflates_latency(self):
        job = make_job("solo")
        alone = FleetOrchestrator([job]).run()
        crowd_jobs = [make_job(f"cam-{index}") for index in range(6)]
        crowded = FleetOrchestrator(crowd_jobs, num_edge_servers=1).run()
        assert crowded.latency_percentiles[99] > \
            alone.latency_percentiles[99] * 2

    def test_as_dict_flattens_metrics(self):
        report = FleetOrchestrator(make_fleet_jobs(4),
                                   num_edge_servers=2).run()
        row = report.as_dict()
        assert row["num_edge_servers"] == 2.0
        assert row["throughput_fps"] == pytest.approx(
            report.aggregate_throughput_fps)
        assert "latency_p95_seconds" in row
        assert not math.isnan(row["latency_p95_seconds"])


class TestDeterminism:
    def test_same_seed_reproduces_identical_metrics(self):
        jobs = make_fleet_jobs(10)
        def run_once():
            return FleetOrchestrator(
                jobs, num_edge_servers=3, policy=PlacementPolicy.LEAST_LOADED,
                arrival_jitter_seconds=2.0, seed=1234).run()
        first, second = run_once(), run_once()
        assert first.as_dict() == second.as_dict()
        assert first.assignments == second.assignments
        assert [outcome.end_seconds for outcome in first.outcomes] == \
            [outcome.end_seconds for outcome in second.outcomes]

    def test_different_seed_changes_arrivals(self):
        jobs = make_fleet_jobs(10)
        first = FleetOrchestrator(jobs, num_edge_servers=3,
                                  arrival_jitter_seconds=2.0, seed=1).run()
        second = FleetOrchestrator(jobs, num_edge_servers=3,
                                   arrival_jitter_seconds=2.0, seed=2).run()
        assert [outcome.start_seconds for outcome in first.outcomes] != \
            [outcome.start_seconds for outcome in second.outcomes]

    def test_zero_jitter_needs_no_seed(self):
        jobs = make_fleet_jobs(4)
        report = FleetOrchestrator(jobs, num_edge_servers=2).run()
        assert all(outcome.start_seconds == 0.0 for outcome in report.outcomes)

    def test_config_bandwidth_shapes_wan_time(self):
        jobs = make_fleet_jobs(4)
        fast = FleetOrchestrator(
            jobs, config=SystemConfig(edge_cloud_bandwidth_mbps=1000.0)).run()
        slow = FleetOrchestrator(
            jobs, config=SystemConfig(edge_cloud_bandwidth_mbps=5.0)).run()
        assert slow.wan_transfer_seconds > fast.wan_transfer_seconds
