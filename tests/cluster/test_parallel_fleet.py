"""Multiprocess fleet execution: parity, determinism and merge edge cases.

The contract under test: for any job list, configuration and seed,
``FleetOrchestrator`` with ``fleet_workers=N`` produces a report equal to
the single-process reference path (``fleet_workers=1``) — the same 1e-6
bound the serial regression suite pins, though in practice the decomposed
simulation is bit-identical because per-edge virtual timestamps are chains
of the same float additions.
"""

import math

import pytest

from repro.cluster.fleet import CameraJob, FleetOrchestrator
from repro.config import SystemConfig
from repro.errors import ClusterError, ConfigurationError
from repro.parallel import (EdgeSimTask, empty_edge_result, replay_cloud,
                            simulate_edge)

TOLERANCE = 1e-6


def make_jobs(count, heterogeneous=True):
    """A small fleet of jobs (optionally all identical to force float ties)."""
    jobs = []
    for index in range(count):
        spread = (index % 5) if heterogeneous else 0
        jobs.append(CameraJob(
            camera=f"cam-{index:02d}", video=f"video-{spread}",
            num_frames=300 + spread * 30, frames_for_inference=12 + spread,
            edge_seconds=0.7 + spread * 0.13, cloud_seconds=0.4 + spread * 0.05,
            camera_edge_bytes=800_000 + spread * 1013,
            edge_cloud_bytes=250_000 + spread * 577))
    return jobs


def assert_reports_equal(reference, candidate):
    """The shared parity contract: no mismatches in any report field."""
    assert reference.parity_mismatches(candidate, TOLERANCE) == []


class TestParallelParity:
    @pytest.mark.parametrize("num_edges,policy,jitter", [
        (1, "round-robin", 0.0),
        (3, "round-robin", 0.0),
        (4, "least-loaded", 0.0),
        (3, "bandwidth-aware", 2.0),
        (2, "least-loaded", 1.5),
    ])
    def test_matches_single_process(self, num_edges, policy, jitter):
        jobs = make_jobs(12)
        serial = FleetOrchestrator(
            jobs, num_edge_servers=num_edges, policy=policy,
            arrival_jitter_seconds=jitter, seed=11).run()
        parallel = FleetOrchestrator(
            jobs, num_edge_servers=num_edges, policy=policy,
            arrival_jitter_seconds=jitter, seed=11, fleet_workers=3).run()
        assert_reports_equal(serial, parallel)

    def test_tied_arrivals_with_different_wan_starts(self):
        """Regression: two jobs from different edges arrive at the cloud at
        the exact same instant but with *different* WAN start times and
        different cloud costs.  The joint scheduler serves the one whose
        WAN transfer started earlier (its completion event was inserted
        first); a naive job-index tie-break serves the other and diverges.
        """
        # Zero link latency; 30 Mbps WAN => 3.75 MB transfers in exactly 1 s.
        config = SystemConfig(camera_edge_latency_ms=0.0,
                              edge_cloud_latency_ms=0.0)
        second_of_wan = int(30e6 / 8)
        jobs = [
            # edge 2.0s + WAN 1.0s -> arrives at 3.0, WAN started at 2.0.
            CameraJob(camera="late-wan-start", video="a", num_frames=10,
                      frames_for_inference=1, edge_seconds=2.0,
                      cloud_seconds=5.0, camera_edge_bytes=0,
                      edge_cloud_bytes=second_of_wan),
            # edge 1.0s + WAN 2.0s -> arrives at 3.0, WAN started at 1.0:
            # inserted first, so the joint sim clouds this job first.
            CameraJob(camera="early-wan-start", video="b", num_frames=10,
                      frames_for_inference=1, edge_seconds=1.0,
                      cloud_seconds=1.0, camera_edge_bytes=0,
                      edge_cloud_bytes=2 * second_of_wan),
        ]
        serial = FleetOrchestrator(jobs, num_edge_servers=2, config=config,
                                   cloud_workers=1).run()
        # Sanity: the scenario really produces the tie and the ordering.
        ends = [outcome.end_seconds for outcome in serial.outcomes]
        assert ends == [9.0, 4.0]
        parallel = FleetOrchestrator(jobs, num_edge_servers=2, config=config,
                                     cloud_workers=1, fleet_workers=2).run()
        assert_reports_equal(serial, parallel)
        assert [o.end_seconds for o in parallel.outcomes] == ends

    def test_completion_vs_tied_arrival_queue_depth(self):
        """Regression: a cloud completion and a new arrival at the same
        instant.  The joint sim inserted the completion first (at cloud
        service start), so it fires first and the arrival never queues; a
        replay that pre-inserts arrivals up-front inverts the order and
        over-counts ``cloud_tier.max_queue_depth``.
        """
        config = SystemConfig(camera_edge_latency_ms=0.0,
                              edge_cloud_latency_ms=0.0)
        second_of_wan = int(30e6 / 8)
        jobs = [
            # Arrives at cloud at t=1.0, computes 2.0s -> completes at 3.0.
            CameraJob(camera="first", video="a", num_frames=10,
                      frames_for_inference=1, edge_seconds=0.5,
                      cloud_seconds=2.0, camera_edge_bytes=0,
                      edge_cloud_bytes=second_of_wan // 2),
            # WAN starts at 2.0 (after 1.0s edge on its own server), lands
            # at exactly t=3.0 — the instant the first job's cloud slot
            # frees up.
            CameraJob(camera="tied", video="b", num_frames=10,
                      frames_for_inference=1, edge_seconds=2.0,
                      cloud_seconds=1.0, camera_edge_bytes=0,
                      edge_cloud_bytes=second_of_wan),
        ]
        serial = FleetOrchestrator(jobs, num_edge_servers=2, config=config,
                                   cloud_workers=1).run()
        assert [o.end_seconds for o in serial.outcomes] == [3.0, 4.0]
        assert serial.cloud_tier.max_queue_depth == 0
        parallel = FleetOrchestrator(jobs, num_edge_servers=2, config=config,
                                     cloud_workers=1, fleet_workers=2).run()
        assert_reports_equal(serial, parallel)
        assert parallel.cloud_tier.max_queue_depth == 0

    def test_identical_jobs_with_cloud_contention(self):
        """Exact virtual-time ties across edges plus a queueing cloud tier:
        the worst case for the decomposed replay's tie-breaking."""
        jobs = make_jobs(12, heterogeneous=False)
        serial = FleetOrchestrator(jobs, num_edge_servers=4,
                                   cloud_workers=2).run()
        parallel = FleetOrchestrator(jobs, num_edge_servers=4, cloud_workers=2,
                                     fleet_workers=4).run()
        assert_reports_equal(serial, parallel)

    def test_parallel_run_is_deterministic(self):
        jobs = make_jobs(10)
        first = FleetOrchestrator(jobs, num_edge_servers=3, seed=5,
                                  arrival_jitter_seconds=1.0,
                                  fleet_workers=2).run()
        second = FleetOrchestrator(jobs, num_edge_servers=3, seed=5,
                                   arrival_jitter_seconds=1.0,
                                   fleet_workers=2).run()
        assert first.as_dict() == second.as_dict()

    def test_config_fleet_workers_is_honoured(self):
        jobs = make_jobs(8)
        config = SystemConfig(fleet_workers=2)
        orchestrator = FleetOrchestrator(jobs, num_edge_servers=2,
                                         config=config)
        assert orchestrator.fleet_workers == 2
        serial = FleetOrchestrator(jobs, num_edge_servers=2).run()
        assert_reports_equal(serial, orchestrator.run())

    def test_explicit_fleet_workers_overrides_config(self):
        jobs = make_jobs(4)
        orchestrator = FleetOrchestrator(
            jobs, num_edge_servers=2, config=SystemConfig(fleet_workers=4),
            fleet_workers=1)
        assert orchestrator.fleet_workers == 1


class TestEmptyTiers:
    """Regression: merges must survive edges that received no jobs."""

    def test_more_edges_than_cameras_single_process(self):
        jobs = make_jobs(2)
        report = FleetOrchestrator(jobs, num_edge_servers=6).run()
        assert report.num_edge_servers == 6
        assert len(report.edge_tiers) == 6
        idle = [tier for tier in report.edge_tiers if tier.completed == 0]
        assert len(idle) == 4
        assert all(tier.utilisation == 0.0 for tier in idle)
        assert math.isfinite(report.mean_edge_utilisation)

    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded",
                                        "bandwidth-aware"])
    def test_more_edges_than_cameras_parallel(self, policy):
        jobs = make_jobs(2)
        serial = FleetOrchestrator(jobs, num_edge_servers=6,
                                   policy=policy).run()
        parallel = FleetOrchestrator(jobs, num_edge_servers=6, policy=policy,
                                     fleet_workers=4).run()
        assert_reports_equal(serial, parallel)
        assert len(parallel.edge_tiers) == 6
        assert len(parallel.wan_tiers) == 6

    def test_zero_cost_jobs_do_not_divide_by_zero(self):
        """A makespan of ~0 must yield utilisation 0, not a ZeroDivisionError."""
        jobs = [CameraJob(camera="z", video="v", num_frames=0,
                          frames_for_inference=0, edge_seconds=0.0,
                          cloud_seconds=0.0, camera_edge_bytes=0,
                          edge_cloud_bytes=0)]
        config = SystemConfig(camera_edge_latency_ms=0.0,
                              edge_cloud_latency_ms=0.0)
        for workers in (1, 2):
            report = FleetOrchestrator(jobs, num_edge_servers=3, config=config,
                                       fleet_workers=workers).run()
            assert report.makespan_seconds == 0.0
            assert all(tier.utilisation == 0.0 for tier in report.edge_tiers)
            assert report.cloud_tier.utilisation == 0.0

    def test_empty_edge_result_shape(self):
        result = empty_edge_result(7)
        assert result.edge_index == 7
        assert result.job_indices == ()
        assert result.events_processed == 0
        assert result.lan_stats.busy_seconds == 0.0


class TestParallelComponents:
    def test_simulate_edge_empty_task(self):
        task = EdgeSimTask(edge_index=2, job_indices=(), jobs=(),
                           start_offsets=(), config=SystemConfig(),
                           edge_workers=1)
        assert simulate_edge(task) == empty_edge_result(2)

    def test_replay_cloud_fifo_and_stats(self):
        # Three jobs, one cloud slot: arrivals at 0, 0, 1; ties served in
        # job-index order.
        ends, stats, finish_events = replay_cloud(
            arrivals=[0.0, 0.0, 1.0], service_seconds=[2.0, 2.0, 2.0],
            cloud_workers=1)
        assert ends == [2.0, 4.0, 6.0]
        assert stats.busy_seconds == 6.0
        assert stats.completed == 3
        assert finish_events == 3

    def test_replay_cloud_parallel_slots(self):
        ends, stats, _ = replay_cloud(
            arrivals=[0.0, 0.0], service_seconds=[3.0, 1.0], cloud_workers=2)
        assert ends == [3.0, 1.0]
        assert stats.max_queue_depth == 0


class TestValidation:
    def test_fleet_workers_must_be_non_negative(self):
        jobs = make_jobs(2)
        with pytest.raises(ClusterError):
            FleetOrchestrator(jobs, fleet_workers=-1)
        with pytest.raises(ConfigurationError):
            SystemConfig(fleet_workers=-1)

    def test_zero_fleet_workers_means_auto(self):
        from repro.config import available_cpu_count
        expected = available_cpu_count()
        assert SystemConfig(fleet_workers=0).fleet_workers == expected
        orchestrator = FleetOrchestrator(make_jobs(2), fleet_workers=0)
        assert orchestrator.fleet_workers == expected

    def test_with_bandwidth_preserves_fleet_workers(self):
        config = SystemConfig(fleet_workers=3).with_bandwidth(10.0)
        assert config.fleet_workers == 3
        assert config.edge_cloud_bandwidth_mbps == 10.0
