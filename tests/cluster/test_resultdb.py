"""SQLite result store: API parity, integrity hashes, concurrent writers.

``SQLiteResultStore`` mirrors the in-memory ``ResultDatabase`` API, adds a
fleet-report round trip, and stamps every row with a content hash that
``verify_integrity`` re-derives — so silent corruption (or out-of-band
edits) is detectable.  WAL journalling plus a busy timeout must let two
processes write the same file concurrently without losing rows.
"""

import multiprocessing
import sqlite3

import pytest

from repro.cluster import ResultDatabase, SQLiteResultStore
from repro.cluster.fleet import CameraJob, FleetOrchestrator
from repro.errors import ClusterError


def make_store(tmp_path, name="results.sqlite"):
    return SQLiteResultStore(str(tmp_path / name))


def populate(store):
    store.record("v", 0, {"car"})
    store.record("v", 5, set())
    store.record("w", 0, {"person", "car"})


def small_report(seed=3):
    jobs = [CameraJob(camera=f"cam-{index}", video=f"vid-{index % 2}",
                      num_frames=120, frames_for_inference=8,
                      edge_seconds=0.5 + index * 0.1, cloud_seconds=0.3,
                      camera_edge_bytes=500_000, edge_cloud_bytes=200_000)
            for index in range(4)]
    return FleetOrchestrator(jobs, num_edge_servers=2, policy="round-robin",
                             arrival_jitter_seconds=2.0, seed=seed).run()


class TestApiMirrorsResultDatabase:
    def test_same_answers_as_in_memory(self, tmp_path):
        store, reference = make_store(tmp_path), ResultDatabase()
        for database in (store, reference):
            populate(database)
        assert store.labels_for("v", 0) == reference.labels_for("v", 0)
        assert store.labels_for("v", 1) is None
        assert ([row.frame_index for row in store.records_for_video("v")]
                == [row.frame_index
                    for row in reference.records_for_video("v")])
        assert store.frames_with_label("w", "person") == [0]
        assert store.video_names() == reference.video_names()
        assert len(store) == len(reference) == 3

    def test_record_overwrites_and_rejects_bad_frames(self, tmp_path):
        store = make_store(tmp_path)
        store.record("v", 0, {"car"})
        store.record("v", 0, {"bus"})
        assert store.labels_for("v", 0) == frozenset({"bus"})
        assert len(store) == 1
        with pytest.raises(ClusterError):
            store.record("v", -1, {"car"})

    def test_persists_across_reopen(self, tmp_path):
        path = tmp_path / "persist.sqlite"
        with SQLiteResultStore(str(path)) as store:
            populate(store)
        with SQLiteResultStore(str(path)) as reopened:
            assert len(reopened) == 3
            assert reopened.labels_for("w", 0) == frozenset({"person", "car"})
            assert reopened.verify_integrity() == []

    def test_clear_empties_every_table(self, tmp_path):
        store = make_store(tmp_path)
        populate(store)
        store.store_fleet_report("run-a", small_report())
        store.clear()
        assert len(store) == 0
        assert store.run_ids() == []
        assert store.outcomes_for_run("run-a") == []


class TestFleetReportRoundTrip:
    def test_store_and_read_back(self, tmp_path):
        store = make_store(tmp_path)
        report = small_report()
        run_hash = store.store_fleet_report("run-a", report)
        assert store.run_ids() == ["run-a"]
        summary = store.report_summary("run-a")
        assert summary["metrics"] == report.as_dict()
        assert summary["assignments"] == report.assignments
        outcomes = store.outcomes_for_run("run-a")
        assert [camera for camera, *_ in outcomes] == sorted(
            outcome.job.camera for outcome in report.outcomes)
        assert isinstance(run_hash, str) and len(run_hash) == 64

    def test_restore_replaces_atomically(self, tmp_path):
        store = make_store(tmp_path)
        store.store_fleet_report("run-a", small_report(seed=3))
        first = store.report_summary("run-a")
        store.store_fleet_report("run-a", small_report(seed=9))
        second = store.report_summary("run-a")
        assert store.run_ids() == ["run-a"]
        assert first != second
        assert store.verify_integrity() == []

    def test_missing_run_is_none(self, tmp_path):
        store = make_store(tmp_path)
        assert store.report_summary("nope") is None
        assert store.outcomes_for_run("nope") == []


class TestIntegrity:
    def test_clean_store_verifies(self, tmp_path):
        store = make_store(tmp_path)
        populate(store)
        store.store_fleet_report("run-a", small_report())
        assert store.verify_integrity() == []

    def test_tampered_row_is_reported(self, tmp_path):
        path = tmp_path / "tamper.sqlite"
        with SQLiteResultStore(str(path)) as store:
            populate(store)
        raw = sqlite3.connect(str(path))
        with raw:
            raw.execute("UPDATE results SET labels = '[\"forged\"]' "
                        "WHERE video_name = 'v' AND frame_index = 0")
        raw.close()
        with SQLiteResultStore(str(path)) as store:
            problems = store.verify_integrity()
        assert len(problems) == 1
        assert "v" in problems[0]


def _hammer(path, lane, count):
    with SQLiteResultStore(path) as store:
        for index in range(count):
            store.record(f"video-{lane}", index, {f"label-{lane}-{index}"})


class TestConcurrentWriters:
    def test_two_processes_interleave_without_loss(self, tmp_path):
        path = str(tmp_path / "shared.sqlite")
        SQLiteResultStore(path).close()  # create schema up front
        count = 40
        context = multiprocessing.get_context()
        workers = [context.Process(target=_hammer, args=(path, lane, count))
                   for lane in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        with SQLiteResultStore(path) as store:
            assert len(store) == 2 * count
            for lane in range(2):
                frames = [row.frame_index
                          for row in store.records_for_video(f"video-{lane}")]
                assert frames == list(range(count))
            assert store.verify_integrity() == []
