"""Tests for macroblock partitioning, the DCT/quantisation and entropy coding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.blocks import (block_grid, block_means, crop_plane, from_blocks,
                                pad_plane, padded_shape, to_blocks)
from repro.codec.entropy import (coefficient_statistics, decode_blocks, encode_blocks,
                                 encoded_size_bytes, split_block_payloads,
                                 zigzag_order)
from repro.codec.transform import (JPEG_LUMA_QUANT, dct2_blocks, dct_matrix,
                                   dequantise_blocks, idct2_blocks,
                                   quantisation_matrix, quantise_blocks,
                                   quality_to_scale, reconstruct_blocks,
                                   transform_and_quantise)
from repro.errors import BitstreamError, CodecError


class TestBlocks:
    def test_pad_and_crop_roundtrip(self, rng):
        plane = rng.normal(size=(13, 21))
        padded = pad_plane(plane, 8)
        assert padded.shape == (16, 24)
        assert np.array_equal(crop_plane(padded, 13, 21), plane)

    def test_padded_shape_already_aligned(self):
        assert padded_shape(16, 24, 8) == (16, 24)

    def test_to_from_blocks_roundtrip(self, rng):
        plane = rng.normal(size=(16, 24))
        blocks = to_blocks(plane, 8)
        assert blocks.shape == (2, 3, 8, 8)
        assert np.array_equal(from_blocks(blocks), plane)

    def test_block_content_layout(self):
        plane = np.arange(64).reshape(8, 8)
        blocks = to_blocks(plane, 4)
        assert np.array_equal(blocks[0, 1], plane[:4, 4:])
        assert np.array_equal(blocks[1, 0], plane[4:, :4])

    def test_unaligned_to_blocks_rejected(self):
        with pytest.raises(CodecError):
            to_blocks(np.zeros((10, 16)), 8)

    def test_block_grid_and_means(self):
        assert block_grid(20, 30, 8) == (3, 4)
        means = block_means(np.full((8, 16), 5.0), 8)
        assert means.shape == (1, 2)
        assert np.allclose(means, 5.0)


class TestTransform:
    def test_dct_matrix_orthonormal(self):
        matrix = dct_matrix(8)
        assert np.allclose(matrix @ matrix.T, np.eye(8), atol=1e-12)

    def test_dct_idct_roundtrip(self, rng):
        blocks = rng.normal(size=(3, 4, 8, 8))
        assert np.allclose(idct2_blocks(dct2_blocks(blocks)), blocks, atol=1e-9)

    def test_constant_block_energy_in_dc(self):
        blocks = np.full((1, 1, 8, 8), 100.0)
        coefficients = dct2_blocks(blocks)
        assert coefficients[0, 0, 0, 0] == pytest.approx(800.0)
        assert np.abs(coefficients[0, 0]).sum() == pytest.approx(800.0)

    def test_quality_scale_monotone(self):
        assert quality_to_scale(10) > quality_to_scale(50) > quality_to_scale(90)
        with pytest.raises(CodecError):
            quality_to_scale(0)

    def test_quantisation_matrix_properties(self):
        matrix = quantisation_matrix(50)
        assert np.array_equal(matrix, JPEG_LUMA_QUANT)
        finer = quantisation_matrix(90)
        assert (finer <= matrix).all()
        assert quantisation_matrix(75, block_size=16).shape == (16, 16)

    def test_quantise_dequantise_bounded_error(self, rng):
        blocks = rng.uniform(-100, 100, size=(2, 2, 8, 8))
        matrix = quantisation_matrix(75)
        reconstructed = dequantise_blocks(quantise_blocks(blocks, matrix), matrix)
        assert np.abs(reconstructed - blocks).max() <= matrix.max() / 2 + 1e-9

    def test_reconstruct_matches_manual_chain(self, rng):
        blocks = rng.uniform(-50, 50, size=(2, 3, 8, 8))
        quantised = transform_and_quantise(blocks, 90)
        reconstructed = reconstruct_blocks(quantised, 90)
        # Per-pixel error is bounded by the quantisation error energy; at
        # quality 90 the RMS error of even white-noise blocks stays small.
        rms = np.sqrt(np.mean((reconstructed - blocks) ** 2))
        assert rms < 10.0


class TestEntropy:
    def test_zigzag_is_permutation(self):
        forward, inverse = zigzag_order(8)
        assert sorted(forward) == list(range(64))
        assert np.array_equal(np.arange(64)[forward][inverse], np.arange(64))

    def test_zigzag_standard_prefix(self):
        forward, _ = zigzag_order(8)
        # First entries of the standard JPEG zig-zag: (0,0), (0,1), (1,0), (2,0), (1,1).
        assert list(forward[:5]) == [0, 1, 8, 16, 9]

    def test_roundtrip_simple(self):
        blocks = np.zeros((1, 2, 8, 8), dtype=np.int32)
        blocks[0, 0, 0, 0] = 5
        blocks[0, 1, 3, 4] = -200
        payload = encode_blocks(blocks)
        decoded = decode_blocks(payload, 1, 2, 8)
        assert np.array_equal(decoded, blocks)

    def test_size_estimate_matches_encoding(self, rng):
        blocks = rng.integers(-300, 300, size=(3, 4, 8, 8)).astype(np.int32)
        blocks[np.abs(blocks) < 250] = 0  # sparse, JPEG-like
        assert encoded_size_bytes(blocks) == len(encode_blocks(blocks))

    def test_truncated_payload_rejected(self):
        blocks = np.ones((1, 1, 8, 8), dtype=np.int32)
        payload = encode_blocks(blocks)
        with pytest.raises(BitstreamError):
            decode_blocks(payload[:-1], 1, 1, 8)
        with pytest.raises(BitstreamError):
            decode_blocks(payload + b"\x00", 1, 1, 8)

    def test_statistics_and_split(self):
        blocks = np.zeros((2, 1, 4, 4), dtype=np.int32)
        blocks[0, 0, 0, 0] = 3
        stats = coefficient_statistics(blocks)
        assert stats["num_blocks"] == 2
        assert stats["nonzero_coefficients"] == 1
        pieces = split_block_payloads(encode_blocks(blocks), 2)
        assert len(pieces) == 2 and len(pieces[1]) == 1  # second block is just EOB

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_roundtrip_and_size(self, blocks_y, blocks_x, seed):
        rng = np.random.default_rng(seed)
        blocks = rng.integers(-2000, 2000, size=(blocks_y, blocks_x, 8, 8))
        mask = rng.random(size=blocks.shape) < 0.9
        blocks = np.where(mask, 0, blocks).astype(np.int32)
        payload = encode_blocks(blocks)
        assert len(payload) == encoded_size_bytes(blocks)
        assert np.array_equal(decode_blocks(payload, blocks_y, blocks_x, 8), blocks)

    def test_long_zero_runs_use_zrl(self):
        blocks = np.zeros((1, 1, 8, 8), dtype=np.int32)
        blocks[0, 0, 7, 7] = 1  # last zig-zag position: 63 zeros before it
        payload = encode_blocks(blocks)
        decoded = decode_blocks(payload, 1, 1, 8)
        assert np.array_equal(decoded, blocks)
        assert payload.count(0xF0) == 3  # three full 16-zero runs
