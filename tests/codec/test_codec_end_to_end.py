"""Tests for the still-image codec, encoder/decoder, container and seeker."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec import (EncodedFrame, EncodedVideo, EncoderParameters, IFrameSeeker,
                         VideoDecoder, VideoEncoder, decode_image, encode_image,
                         estimate_encoded_size, read_frame_index, roundtrip_psnr,
                         seek_keyframes, select_events_from_keyframes)
from repro.errors import BitstreamError, ConfigurationError, DecodeError, EncodeError
from repro.video.frame import FrameType


class TestStillImageCodec:
    def test_roundtrip_shape_and_quality(self, rng):
        # A textured-but-structured image (smooth ramp + moderate grain), the
        # kind of content the synthetic scenes produce.
        ramp = np.tile(np.linspace(60, 180, 53), (37, 1))
        image = np.clip(ramp + rng.normal(0, 15, size=(37, 53)), 0, 255).astype(np.uint8)
        decoded = decode_image(encode_image(image, quality=90))
        assert decoded.shape == image.shape
        psnr, stats = roundtrip_psnr(image, quality=90)
        assert psnr > 25.0
        assert stats.compression_ratio > 0.5

    def test_smooth_image_compresses_well(self):
        gradient = np.tile(np.linspace(0, 255, 64, dtype=np.uint8), (64, 1))
        encoded = encode_image(gradient, quality=75)
        assert len(encoded) < gradient.size / 4
        psnr, _ = roundtrip_psnr(gradient, quality=75)
        assert psnr > 35.0

    def test_color_roundtrip(self, rng):
        image = rng.integers(0, 255, size=(24, 24, 3), dtype=np.uint8)
        decoded = decode_image(encode_image(image, quality=85))
        assert decoded.shape == image.shape
        assert np.abs(decoded.astype(int) - image.astype(int)).mean() < 20

    def test_estimate_matches_actual_size(self, rng):
        image = rng.integers(0, 255, size=(40, 56), dtype=np.uint8)
        assert estimate_encoded_size(image, 75) == len(encode_image(image, 75))

    def test_higher_quality_larger_payload(self, rng):
        image = rng.integers(0, 255, size=(48, 48), dtype=np.uint8)
        assert len(encode_image(image, 90)) > len(encode_image(image, 30))

    def test_corrupt_payload_rejected(self, rng):
        image = rng.integers(0, 255, size=(16, 16), dtype=np.uint8)
        payload = encode_image(image)
        with pytest.raises(BitstreamError):
            decode_image(payload[:10])
        with pytest.raises(BitstreamError):
            decode_image(b"XXXX" + payload[4:])

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=9, max_value=40), st.integers(min_value=9, max_value=40),
           st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_roundtrip_any_size(self, height, width, seed):
        image = np.random.default_rng(seed).integers(0, 255, size=(height, width),
                                                     dtype=np.uint8)
        decoded = decode_image(encode_image(image, quality=80))
        assert decoded.shape == image.shape
        assert np.abs(decoded.astype(int) - image.astype(int)).mean() < 25


class TestEncoder:
    def test_first_frame_is_keyframe(self, tiny_encoded):
        assert tiny_encoded.frames[0].frame_type is FrameType.I

    def test_size_only_matches_payload_sizes(self, tiny_encoded, tiny_encoded_payload):
        assert [frame.size_bytes for frame in tiny_encoded.frames] == \
            [frame.size_bytes for frame in tiny_encoded_payload.frames]
        assert all(frame.payload is None for frame in tiny_encoded.frames)
        assert all(frame.has_payload for frame in tiny_encoded_payload.frames)

    def test_encoder_types_match_placer(self, tiny_video, tuned_parameters,
                                        tiny_activities, tiny_encoded):
        expected = VideoEncoder(tuned_parameters).place_frame_types(tiny_activities)
        assert tiny_encoded.frame_types() == expected

    def test_keyframes_align_with_events(self, tiny_encoded, tiny_timeline):
        """Every object event receives an I-frame within a second of video."""
        keyframes = np.array(tiny_encoded.keyframe_indices)
        # A latched scene cut can be deferred by up to the minimum key-frame
        # interval (25 frames), i.e. well under a second at 30 fps.
        tolerance = 30
        for event in tiny_timeline:
            if event.is_background and event.start_frame == 0:
                continue
            distances = keyframes - event.start_frame
            ahead = distances[distances >= 0]
            assert ahead.size and ahead.min() <= tolerance, (
                f"event at {event.start_frame} has no nearby I-frame")

    def test_pframes_much_smaller_than_iframes(self, tiny_encoded):
        iframe_sizes = [f.size_bytes for f in tiny_encoded.frames if f.is_keyframe]
        pframe_sizes = [f.size_bytes for f in tiny_encoded.frames if not f.is_keyframe]
        assert np.mean(pframe_sizes) < np.mean(iframe_sizes) / 4

    def test_mismatched_activities_rejected(self, tiny_video, tiny_activities):
        with pytest.raises(EncodeError):
            VideoEncoder().encode(tiny_video, activities=tiny_activities[:-1])

    def test_semantic_encoding_has_more_keyframes_than_default(self, tiny_video,
                                                               tiny_activities,
                                                               tiny_encoded):
        default = VideoEncoder(EncoderParameters()).encode(
            tiny_video, activities=tiny_activities)
        assert tiny_encoded.num_keyframes > default.num_keyframes
        assert tiny_encoded.total_size_bytes > default.total_size_bytes


class TestDecoder:
    def test_full_decode_reconstruction(self, tiny_encoded_payload, tiny_raw_video):
        report = VideoDecoder().reconstruction_error(tiny_encoded_payload,
                                                     tiny_raw_video)
        assert report["num_frames"] == tiny_raw_video.metadata.num_frames
        assert report["psnr_db"] > 24.0

    def test_decode_keyframes_only(self, tiny_encoded_payload):
        frames = VideoDecoder().decode_keyframes(tiny_encoded_payload)
        assert len(frames) == tiny_encoded_payload.num_keyframes
        assert all(frame.frame_type is FrameType.I for frame in frames)

    def test_decode_frame_at_matches_sequential(self, tiny_encoded_payload):
        decoder = VideoDecoder()
        sequential = list(decoder.iter_decoded_frames(tiny_encoded_payload))
        target = min(10, tiny_encoded_payload.num_frames - 1)
        random_access = decoder.decode_frame_at(tiny_encoded_payload, target)
        assert np.array_equal(random_access.data, sequential[target].data)

    def test_size_only_frames_cannot_be_decoded(self, tiny_encoded):
        with pytest.raises(DecodeError):
            VideoDecoder().decode_keyframe(tiny_encoded.frames[0])

    def test_non_keyframe_rejected_by_keyframe_decoder(self, tiny_encoded_payload):
        pframe = next(f for f in tiny_encoded_payload.frames if not f.is_keyframe)
        with pytest.raises(DecodeError):
            VideoDecoder().decode_keyframe(pframe)


class TestContainerAndSeeker:
    def test_serialize_deserialize_roundtrip(self, tiny_encoded_payload):
        data = tiny_encoded_payload.serialize()
        parsed = EncodedVideo.deserialize(data)
        assert parsed.num_frames == tiny_encoded_payload.num_frames
        assert parsed.keyframe_indices == tiny_encoded_payload.keyframe_indices
        assert parsed.parameters == tiny_encoded_payload.parameters
        assert parsed.frames[0].payload == tiny_encoded_payload.frames[0].payload

    def test_read_frame_index_without_payloads(self, tiny_encoded_payload):
        metadata, entries = read_frame_index(tiny_encoded_payload.serialize())
        assert metadata.num_frames == len(entries)
        assert [e.frame_type for e in entries] == tiny_encoded_payload.frame_types()

    def test_corrupt_container_rejected(self, tiny_encoded_payload):
        data = tiny_encoded_payload.serialize()
        with pytest.raises(BitstreamError):
            EncodedVideo.deserialize(data[:20])
        with pytest.raises(BitstreamError):
            EncodedVideo.deserialize(b"JUNK" + data[4:])

    def test_seeker_counts(self, tiny_encoded):
        seeker = IFrameSeeker()
        keyframes, stats = seeker.seek_with_stats(tiny_encoded)
        assert len(keyframes) == tiny_encoded.num_keyframes
        assert stats.frames_scanned == tiny_encoded.num_frames
        assert stats.sampling_fraction == pytest.approx(tiny_encoded.sampling_fraction)
        assert 0.0 < stats.sampling_fraction < 0.5
        assert stats.data_reduction_factor > 1.0

    def test_seek_serialized_matches_in_memory(self, tiny_encoded_payload):
        seeker = IFrameSeeker()
        _, entries, stats = seeker.seek_serialized(tiny_encoded_payload.serialize())
        assert [e.index for e in entries] == tiny_encoded_payload.keyframe_indices
        assert stats.keyframe_bytes == tiny_encoded_payload.keyframe_size_bytes
        assert seek_keyframes(tiny_encoded_payload)[0].index == entries[0].index

    def test_segments_from_keyframes(self):
        segments = select_events_from_keyframes([0, 10, 25], 40)
        assert segments == [(0, 10), (10, 25), (25, 40)]
        with pytest.raises(BitstreamError):
            select_events_from_keyframes([5, 10], 20)

    def test_encoded_frame_validation(self):
        with pytest.raises(ConfigurationError):
            EncodedFrame(index=0, frame_type=FrameType.I, size_bytes=3, payload=b"xxxx")
        with pytest.raises(ConfigurationError):
            EncodedFrame(index=-1, frame_type=FrameType.P, size_bytes=0)

    def test_video_must_start_with_keyframe(self, tiny_encoded):
        frames = [EncodedFrame(index=0, frame_type=FrameType.P, size_bytes=10)]
        metadata = tiny_encoded.metadata
        with pytest.raises(ConfigurationError):
            EncodedVideo(metadata, tiny_encoded.parameters, frames)
