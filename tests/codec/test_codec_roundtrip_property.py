"""Property-style round-trip tests for the codec.

Random resolutions, GOP lengths and :class:`EncoderParameters` grids must

* survive a serialize -> deserialize -> re-serialize round trip bit-exact,
* decode deterministically (two decodes of the same payload agree bit-exact),
* place I-frames exactly where :class:`KeyframePlacer` says they belong for
  the same analysis pass, and
* respect the GOP-size upper bound on the distance between I-frames.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codec import (EncodedVideo, EncoderParameters, VideoDecoder,
                         VideoEncoder)
from repro.codec.gop import KeyframePlacer, gop_lengths
from repro.video.frame import FrameType
from repro.video.raw_video import RawVideo


def make_video(height, width, num_frames, seed, jump_every=0):
    """A noisy synthetic clip; ``jump_every`` injects hard scene changes."""
    rng = np.random.default_rng(seed)
    base = rng.integers(40, 200, size=(height, width)).astype(np.float64)
    frames = []
    for index in range(num_frames):
        if jump_every and index and index % jump_every == 0:
            base = rng.integers(40, 200, size=(height, width)).astype(np.float64)
        drift = rng.normal(0, 2.0, size=(height, width))
        frames.append(np.clip(base + drift, 0, 255).astype(np.uint8))
    return RawVideo.from_arrays(f"prop-{seed}", frames)


#: The grid mirrors the offline tuner's search space at test-friendly sizes.
parameter_grids = st.builds(
    EncoderParameters,
    gop_size=st.sampled_from([3, 8, 25, 120]),
    scenecut_threshold=st.sampled_from([0.0, 40.0, 250.0, 400.0]),
    quality=st.sampled_from([40, 75, 90]),
)


class TestCodecRoundTripProperties:
    @settings(max_examples=12, deadline=None)
    @given(height=st.integers(min_value=16, max_value=40),
           width=st.integers(min_value=16, max_value=40),
           num_frames=st.integers(min_value=2, max_value=24),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           parameters=parameter_grids)
    def test_container_roundtrip_bit_exact(self, height, width, num_frames,
                                           seed, parameters):
        video = make_video(height, width, num_frames, seed)
        encoded = VideoEncoder(parameters).encode(video,
                                                  materialise_payload=True)
        data = encoded.serialize()
        parsed = EncodedVideo.deserialize(data)
        assert parsed.frame_types() == encoded.frame_types()
        assert [frame.size_bytes for frame in parsed.frames] == \
            [frame.size_bytes for frame in encoded.frames]
        assert [frame.payload for frame in parsed.frames] == \
            [frame.payload for frame in encoded.frames]
        assert parsed.serialize() == data

    @settings(max_examples=10, deadline=None)
    @given(height=st.integers(min_value=16, max_value=32),
           width=st.integers(min_value=16, max_value=32),
           num_frames=st.integers(min_value=2, max_value=16),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           parameters=parameter_grids)
    def test_decode_is_bit_exact_deterministic(self, height, width, num_frames,
                                               seed, parameters):
        video = make_video(height, width, num_frames, seed)
        encoded = VideoEncoder(parameters).encode(video,
                                                  materialise_payload=True)
        decoder = VideoDecoder()
        first = [frame.data for frame in decoder.iter_decoded_frames(encoded)]
        second = [frame.data for frame in decoder.iter_decoded_frames(encoded)]
        assert len(first) == video.metadata.num_frames
        for once, twice in zip(first, second):
            assert once.shape == (height, width)
            assert np.array_equal(once, twice)

    @settings(max_examples=15, deadline=None)
    @given(height=st.integers(min_value=16, max_value=40),
           width=st.integers(min_value=16, max_value=40),
           num_frames=st.integers(min_value=2, max_value=40),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           jump_every=st.sampled_from([0, 3, 7]),
           parameters=parameter_grids)
    def test_iframe_indices_match_keyframe_placer(self, height, width,
                                                  num_frames, seed, jump_every,
                                                  parameters):
        video = make_video(height, width, num_frames, seed,
                           jump_every=jump_every)
        encoder = VideoEncoder(parameters)
        activities = encoder.analyze(video)
        encoded = encoder.encode(video, activities=activities)
        placer = KeyframePlacer(parameters)
        assert encoded.keyframe_indices == \
            placer.keyframe_indices(activities)
        assert encoded.frame_types() == placer.place(activities)

    @settings(max_examples=15, deadline=None)
    @given(height=st.integers(min_value=16, max_value=32),
           width=st.integers(min_value=16, max_value=32),
           num_frames=st.integers(min_value=2, max_value=60),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           jump_every=st.sampled_from([0, 5]),
           parameters=parameter_grids)
    def test_gop_structure_invariants(self, height, width, num_frames, seed,
                                      jump_every, parameters):
        video = make_video(height, width, num_frames, seed,
                           jump_every=jump_every)
        encoded = VideoEncoder(parameters).encode(video)
        frame_types = encoded.frame_types()
        assert frame_types[0] is FrameType.I
        # No GOP may exceed the configured maximum I-frame spacing (the
        # trailing partial GOP may be shorter, never longer).
        assert max(gop_lengths(frame_types)) <= parameters.gop_size
        assert all(frame_type in (FrameType.I, FrameType.P)
                   for frame_type in frame_types)

    @settings(max_examples=8, deadline=None)
    @given(num_frames=st.integers(min_value=2, max_value=20),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_size_only_sizes_match_materialised_sizes(self, num_frames, seed):
        parameters = EncoderParameters(gop_size=6, scenecut_threshold=100.0)
        video = make_video(24, 24, num_frames, seed)
        size_only = VideoEncoder(parameters).encode(video)
        materialised = VideoEncoder(parameters).encode(
            video, materialise_payload=True)
        assert [frame.size_bytes for frame in size_only.frames] == \
            [frame.size_bytes for frame in materialised.frames]
