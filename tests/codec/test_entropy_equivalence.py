"""Equivalence of the vectorised entropy coder with the reference coder.

The vectorised ``encode_blocks`` / ``decode_blocks`` must be byte-for-byte
(and error-for-error) interchangeable with the retained per-block Python
reference implementations — the byte format is pinned by the reference, not
by the fast path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.entropy import (MAX_LEVEL, decode_blocks,
                                 decode_blocks_reference, encode_blocks,
                                 encode_blocks_reference, encoded_size_bytes,
                                 split_block_payloads)
from repro.errors import BitstreamError


def random_blocks(blocks_y, blocks_x, block_size, density, seed,
                  level_range=40000):
    """Quantised block array with a controlled non-zero density."""
    rng = np.random.default_rng(seed)
    shape = (blocks_y, blocks_x, block_size, block_size)
    levels = rng.integers(-level_range, level_range + 1, size=shape)
    mask = rng.random(shape) < density
    return np.where(mask, levels, 0).astype(np.int64)


block_arrays = st.builds(
    random_blocks,
    blocks_y=st.integers(min_value=1, max_value=6),
    blocks_x=st.integers(min_value=1, max_value=6),
    block_size=st.sampled_from([2, 4, 8, 16]),
    density=st.sampled_from([0.0, 0.02, 0.15, 0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestEncodeDecodeEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(quantised=block_arrays)
    def test_encode_matches_reference_byte_for_byte(self, quantised):
        assert encode_blocks(quantised) == encode_blocks_reference(quantised)

    @settings(max_examples=60, deadline=None)
    @given(quantised=block_arrays)
    def test_decode_matches_reference(self, quantised):
        payload = encode_blocks_reference(quantised)
        blocks_y, blocks_x, block_size = quantised.shape[:3]
        fast = decode_blocks(payload, blocks_y, blocks_x, block_size)
        reference = decode_blocks_reference(payload, blocks_y, blocks_x,
                                            block_size)
        assert np.array_equal(fast, reference)

    @settings(max_examples=40, deadline=None)
    @given(quantised=block_arrays)
    def test_round_trip_recovers_clipped_levels(self, quantised):
        payload = encode_blocks(quantised)
        blocks_y, blocks_x, block_size = quantised.shape[:3]
        decoded = decode_blocks(payload, blocks_y, blocks_x, block_size)
        assert np.array_equal(decoded,
                              np.clip(quantised, -MAX_LEVEL, MAX_LEVEL))
        assert len(payload) == encoded_size_bytes(
            np.clip(quantised, -MAX_LEVEL, MAX_LEVEL))

    @settings(max_examples=60, deadline=None)
    @given(quantised=block_arrays,
           mutations=st.lists(
               st.tuples(st.integers(min_value=0, max_value=10**9),
                         st.integers(min_value=0, max_value=255)),
               min_size=1, max_size=4))
    def test_mutated_payloads_agree_with_reference(self, quantised, mutations):
        """Random corruption: both decoders accept or reject identically."""
        payload = bytearray(encode_blocks_reference(quantised))
        if not payload:
            return
        for position, value in mutations:
            payload[position % len(payload)] = value
        payload = bytes(payload)
        blocks_y, blocks_x, block_size = quantised.shape[:3]
        try:
            reference = decode_blocks_reference(payload, blocks_y, blocks_x,
                                                block_size)
            reference_error = None
        except BitstreamError as exc:
            reference, reference_error = None, exc
        try:
            fast = decode_blocks(payload, blocks_y, blocks_x, block_size)
            fast_error = None
        except BitstreamError as exc:
            fast, fast_error = None, exc
        assert (reference_error is None) == (fast_error is None)
        if reference_error is None:
            assert np.array_equal(fast, reference)

    def test_empty_blocks_are_one_eob_each(self):
        quantised = np.zeros((2, 3, 8, 8), dtype=np.int64)
        assert encode_blocks(quantised) == b"\x00" * 6
        assert np.array_equal(decode_blocks(b"\x00" * 6, 2, 3, 8), quantised)

    def test_boundary_levels(self):
        """The -128/127 one-byte boundary and the int16 clip boundary."""
        quantised = np.zeros((1, 6, 8, 8), dtype=np.int64)
        for index, level in enumerate((-128, 127, -129, 128, -MAX_LEVEL - 5,
                                       MAX_LEVEL + 5)):
            quantised[0, index, 0, 0] = level
        payload = encode_blocks(quantised)
        assert payload == encode_blocks_reference(quantised)
        decoded = decode_blocks(payload, 1, 6, 8)
        assert np.array_equal(decoded, np.clip(quantised, -MAX_LEVEL, MAX_LEVEL))


class TestDecodeErrorEquivalence:
    CASES = [
        b"",                              # truncated: no EOB at all
        b"\x12",                          # truncated: missing level bytes
        b"\x13\x00\x00\x00\x00",          # invalid level size 3
        b"\x1f\x00\x00",                  # invalid level size 15
        b"\x10\x00",                      # invalid level size 0 (regression)
        b"\x00\x00",                      # trailing bytes after the last block
        b"\xf0\xf0\xf0\xf0\x11\x05\x00",  # ZRL run past the block end
    ]

    @pytest.mark.parametrize("payload", CASES)
    def test_error_cases_match_reference(self, payload):
        with pytest.raises(BitstreamError):
            decode_blocks_reference(payload, 1, 1, 8)
        with pytest.raises(BitstreamError):
            decode_blocks(payload, 1, 1, 8)


class TestSplitBlockPayloadsValidation:
    def test_split_round_trips_valid_payloads(self):
        quantised = random_blocks(2, 2, 8, 0.3, seed=7)
        payload = encode_blocks(quantised)
        pieces = split_block_payloads(payload, 4)
        assert b"".join(pieces) == payload
        assert all(piece.endswith(b"\x00") for piece in pieces)

    @pytest.mark.parametrize("size", range(3, 16))
    def test_invalid_level_size_raises(self, size):
        """Regression: sizes 3-15 used to silently desynchronise the scan."""
        token = bytes([(0 << 4) | size])
        payload = token + b"\x00" * size + b"\x00"
        with pytest.raises(BitstreamError, match="invalid level size"):
            split_block_payloads(payload, 1)

    def test_truncated_level_bytes_raise(self):
        with pytest.raises(BitstreamError):
            split_block_payloads(b"\x12\x01", 1)

    def test_truncated_block_raises(self):
        with pytest.raises(BitstreamError, match="truncated"):
            split_block_payloads(b"\x00", 2)
