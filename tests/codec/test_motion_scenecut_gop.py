"""Tests for motion estimation, scene-cut analysis and key-frame placement."""

import numpy as np
import pytest

from repro.codec.gop import (DEFAULT_PARAMETERS, EncoderParameters, KeyframePlacer,
                             StreamingKeyframePlacer, filtering_rate, gop_lengths,
                             sampling_fraction)
from repro.codec.motion import (candidate_offsets, estimate_motion, motion_compensate,
                                residual_plane, shift_plane)
from repro.codec.scenecut import (FrameActivity, SceneCutAnalyzer, is_scenecut,
                                  novelty_series, scenecut_score_threshold,
                                  summarize_activities)
from repro.errors import CodecError, ConfigurationError
from repro.video.frame import FrameType


class TestMotion:
    def test_candidate_offsets_contain_origin_first(self):
        offsets = candidate_offsets(2)
        assert offsets[0] == (0, 0)
        assert len(offsets) == 25
        assert (1, -2) in offsets

    def test_shift_plane_semantics(self):
        plane = np.arange(12, dtype=float).reshape(3, 4)
        shifted = shift_plane(plane, 1, 0)
        assert np.array_equal(shifted[1:], plane[:-1])
        assert np.array_equal(shifted[0], plane[0])  # edge replication

    def test_pure_translation_recovered(self, rng):
        reference = rng.uniform(0, 255, size=(32, 32))
        current = shift_plane(reference, 2, -1)
        field = estimate_motion(reference, current, block_size=8, search_radius=3)
        interior = field.vectors[1:-1, 1:-1]
        assert (interior == np.array([2, -1])).all()
        assert field.block_sad[1:-1, 1:-1].max() < 1e-9

    def test_motion_compensation_reconstructs_translation(self, rng):
        reference = rng.uniform(0, 255, size=(24, 40))
        current = shift_plane(reference, 1, 1)
        field = estimate_motion(reference, current, block_size=8, search_radius=2)
        prediction = motion_compensate(reference, field, current.shape)
        assert np.abs(residual_plane(current, prediction))[4:-4, 4:-4].max() < 1e-9

    def test_static_scene_zero_vectors(self, rng):
        plane = rng.uniform(0, 255, size=(16, 16))
        field = estimate_motion(plane, plane, block_size=8, search_radius=2)
        assert field.nonzero_vector_fraction == 0.0
        assert field.mean_sad_per_pixel == pytest.approx(0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CodecError):
            estimate_motion(np.zeros((8, 8)), np.zeros((8, 16)))


class TestSceneCut:
    def test_threshold_mapping_monotone(self):
        thresholds = [scenecut_score_threshold(value) for value in (0, 40, 100, 250, 400)]
        assert all(a >= b for a, b in zip(thresholds, thresholds[1:]))
        assert scenecut_score_threshold(400) == 0.0
        assert scenecut_score_threshold(-5) == scenecut_score_threshold(0)

    def test_is_scenecut_first_frame_and_disabled(self):
        first = FrameActivity(0, 0.0, 1.0, 1.0, 0.0, is_first=True)
        assert is_scenecut(first, 40)
        quiet = FrameActivity(1, 1.0, 100.0, 0.2, 0.0)
        assert not is_scenecut(quiet, 0)
        assert is_scenecut(quiet, 300)

    def test_noise_does_not_trigger_novelty(self, rng):
        analyzer = SceneCutAnalyzer()
        base = rng.uniform(60, 200, size=(40, 64))
        noisy_a = base + rng.normal(0, 2.0, size=base.shape)
        noisy_b = base + rng.normal(0, 2.0, size=base.shape)
        activity = analyzer.analyze_pair(noisy_a, noisy_b, 1)
        assert activity.novel_block_fraction == 0.0

    def test_appearing_object_triggers_novelty(self, rng):
        analyzer = SceneCutAnalyzer()
        background = rng.uniform(60, 200, size=(40, 64))
        with_object = background.copy()
        with_object[10:26, 20:44] += 80.0
        activity = analyzer.analyze_pair(background, with_object, 1)
        assert activity.novel_block_fraction > 0.05
        assert activity.inter_cost > 0

    def test_translation_of_whole_scene_not_novel(self, rng):
        analyzer = SceneCutAnalyzer(search_radius=2)
        background = rng.uniform(60, 200, size=(40, 64))
        shifted = shift_plane(background, 0, 1)
        activity = analyzer.analyze_pair(background, shifted, 1)
        # A global pan is motion-compensable: only frame-edge blocks may be novel.
        assert activity.novel_block_fraction < 0.2

    def test_analyze_video_first_frame_flag(self, tiny_video):
        activities = SceneCutAnalyzer().analyze_video(tiny_video)
        assert activities[0].is_first
        assert not activities[1].is_first
        assert len(activities) == tiny_video.metadata.num_frames
        summary = summarize_activities(activities)
        assert summary["num_frames"] == len(activities)
        assert novelty_series(activities).shape == (len(activities),)

    def test_invalid_construction(self):
        with pytest.raises(CodecError):
            SceneCutAnalyzer(block_size=0)
        with pytest.raises(CodecError):
            SceneCutAnalyzer(novel_pixel_count=0)


def _activity(index, novelty):
    return FrameActivity(frame_index=index, inter_cost=1.0, intra_cost=10.0,
                         novel_block_fraction=novelty, moving_block_fraction=0.0,
                         is_first=index == 0)


class TestKeyframePlacement:
    def test_parameters_validation(self):
        with pytest.raises(ConfigurationError):
            EncoderParameters(gop_size=0)
        with pytest.raises(ConfigurationError):
            EncoderParameters(scenecut_threshold=500)
        with pytest.raises(ConfigurationError):
            EncoderParameters(quality=0)

    def test_effective_min_gop(self):
        assert EncoderParameters(gop_size=250).effective_min_gop == 25
        assert EncoderParameters(gop_size=1000).effective_min_gop == 25
        assert EncoderParameters(gop_size=40).effective_min_gop == 4
        assert EncoderParameters(gop_size=250, min_gop_size=7).effective_min_gop == 7

    def test_gop_forcing_without_scenecuts(self):
        activities = [_activity(i, 0.0) for i in range(10)]
        placer = KeyframePlacer(EncoderParameters(gop_size=4, scenecut_threshold=0))
        types = placer.place(activities)
        assert [t is FrameType.I for t in types] == [
            True, False, False, False, True, False, False, False, True, False]
        assert gop_lengths(types) == [4, 4, 2]

    def test_scenecut_places_keyframe(self):
        activities = [_activity(0, 1.0)] + [_activity(i, 0.0) for i in range(1, 6)]
        activities[3] = _activity(3, 0.5)
        placer = KeyframePlacer(EncoderParameters(gop_size=100, scenecut_threshold=250,
                                                  min_gop_size=1))
        assert placer.keyframe_indices(activities) == [0, 3]

    def test_latched_scenecut_deferred_not_dropped(self):
        """A scene cut inside the min-GOP window fires as soon as allowed."""
        activities = [_activity(i, 0.0) for i in range(12)]
        activities[2] = _activity(2, 0.5)  # too close to frame 0
        parameters = EncoderParameters(gop_size=100, scenecut_threshold=250,
                                       min_gop_size=5)
        assert KeyframePlacer(parameters).keyframe_indices(activities) == [0, 5]

    def test_streaming_placer_matches_batch(self, tiny_activities, tuned_parameters):
        batch = KeyframePlacer(tuned_parameters).place(tiny_activities)
        streaming = StreamingKeyframePlacer(tuned_parameters)
        assert [streaming.decide(activity) for activity in tiny_activities] == batch

    def test_sampling_and_filtering_rates(self):
        types = [FrameType.I, FrameType.P, FrameType.P, FrameType.I]
        assert sampling_fraction(types) == pytest.approx(0.5)
        assert filtering_rate(types) == pytest.approx(0.5)
        assert sampling_fraction([]) == 0.0

    def test_higher_scenecut_never_fewer_keyframes(self, tiny_activities):
        counts = []
        for scenecut in (0, 100, 200, 300, 400):
            parameters = EncoderParameters(gop_size=1000, scenecut_threshold=scenecut)
            counts.append(len(KeyframePlacer(parameters).keyframe_indices(tiny_activities)))
        assert counts == sorted(counts)

    def test_default_parameters_constants(self):
        assert DEFAULT_PARAMETERS.gop_size == 250
        assert DEFAULT_PARAMETERS.scenecut_threshold == 40.0
