"""Shared fixtures for the test suite.

All fixtures are intentionally tiny (tens of frames, <100x100 pixels) so the
full suite runs in a couple of minutes on a laptop CPU; the experiment-scale
behaviour is covered by the benchmark harnesses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import EncoderParameters, VideoEncoder
from repro.video import (ObjectClassSpec, Resolution, SceneProfile, SyntheticScene,
                         make_scenario)


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    """Point the on-disk artifact cache at a per-session temp directory.

    Keeps the suite hermetic: tests never read a stale user-level cache and
    never leave artifacts behind.  Individual tests that exercise the cache
    monkeypatch ``REPRO_CACHE_DIR`` to their own directories on top.
    """
    from repro.datasets.diskcache import temporary_cache_dir
    with temporary_cache_dir(tmp_path_factory.mktemp("repro-cache")):
        yield


@pytest.fixture(scope="session")
def tiny_profile() -> SceneProfile:
    """A small single-object scene: one 'car' class, ~20 seconds, 64x40."""
    classes = ((ObjectClassSpec("car", relative_height=0.3, aspect_ratio=2.0,
                                speed_fraction=0.25, brightness_delta=80.0), 1.0),)
    return SceneProfile(
        name="tiny", resolution=Resolution(64, 40), fps=30.0, duration_seconds=20.0,
        object_classes=classes, mean_gap_seconds=4.0, mean_dwell_seconds=4.0,
        noise_std=2.0, background_detail=20.0, texture_detail=28.0,
        illumination_drift=2.0, seed=11)


@pytest.fixture(scope="session")
def tiny_scene(tiny_profile) -> SyntheticScene:
    """The rendered scene for :func:`tiny_profile`."""
    return SyntheticScene(tiny_profile)


@pytest.fixture(scope="session")
def tiny_video(tiny_scene):
    """The lazily generated video of the tiny scene (with ground truth)."""
    return tiny_scene.video()


@pytest.fixture(scope="session")
def tiny_raw_video(tiny_video):
    """The tiny video with all frames materialised in memory."""
    return tiny_video.materialise()


@pytest.fixture(scope="session")
def tiny_timeline(tiny_video):
    """Ground-truth event timeline of the tiny video."""
    return tiny_video.timeline


@pytest.fixture(scope="session")
def tuned_parameters() -> EncoderParameters:
    """Encoder parameters that reliably detect events in the tiny scene."""
    return EncoderParameters(gop_size=500, scenecut_threshold=250.0)


@pytest.fixture(scope="session")
def tiny_activities(tiny_video, tuned_parameters):
    """Scene-cut analysis pass of the tiny video."""
    return VideoEncoder(tuned_parameters).analyze(tiny_video)


@pytest.fixture(scope="session")
def tiny_encoded(tiny_video, tuned_parameters, tiny_activities):
    """Size-only semantic encoding of the tiny video."""
    return VideoEncoder(tuned_parameters).encode(tiny_video,
                                                 activities=tiny_activities)


@pytest.fixture(scope="session")
def tiny_encoded_payload(tiny_video, tuned_parameters, tiny_activities):
    """Fully materialised (decodable) encoding of the tiny video."""
    return VideoEncoder(tuned_parameters).encode(
        tiny_video, materialise_payload=True, activities=tiny_activities)


@pytest.fixture(scope="session")
def quick_scenario_video():
    """A very short Jackson-square scenario clip used by integration tests."""
    profile = make_scenario("jackson_square", duration_seconds=15, render_scale=0.08)
    return SyntheticScene(profile).video()


@pytest.fixture()
def rng() -> np.random.Generator:
    """A per-test deterministic random generator."""
    return np.random.default_rng(1234)
