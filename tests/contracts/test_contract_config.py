"""The numeric-contract objects and their wiring into SystemConfig."""

import numpy as np
import pytest

from repro import SystemConfig
from repro.contracts import (EXACT_CONTRACT, FAST_CONTRACT, NumericContract,
                             PRECISION_ENV, PRECISION_MODES, ToleranceBudget,
                             activation_dtype, agreement_fraction,
                             resolve_contract, selection_agreement,
                             validate_precision)
from repro.errors import ConfigurationError


class TestToleranceBudget:
    def test_margin_combines_atol_and_rtol(self):
        budget = ToleranceBudget(atol=0.5, rtol=0.1)
        assert budget.margin(np.array([0.0, 10.0])) == pytest.approx([0.5, 1.5])

    def test_values_within(self):
        budget = ToleranceBudget(atol=0.1)
        assert budget.values_within([1.0, 2.0], [1.05, 1.95])
        assert not budget.values_within([1.0, 2.0], [1.2, 2.0])

    def test_max_violation_signed(self):
        budget = ToleranceBudget(atol=0.1)
        assert budget.max_violation([1.0], [1.05]) < 0
        assert budget.max_violation([1.0], [1.3]) == pytest.approx(0.2)
        assert budget.max_violation(np.empty(0), np.empty(0)) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ToleranceBudget(atol=-1.0)
        with pytest.raises(ConfigurationError):
            ToleranceBudget(min_agreement=1.5)


class TestAgreementHelpers:
    def test_agreement_fraction_sequences(self):
        assert agreement_fraction(["a", "b"], ["a", "c"]) == 0.5
        assert agreement_fraction([], []) == 1.0
        with pytest.raises(ConfigurationError):
            agreement_fraction(["a"], ["a", "b"])

    def test_agreement_fraction_vector_fields(self):
        exact = np.zeros((2, 2, 2), dtype=np.int16)
        fast = exact.copy()
        fast[0, 0] = (1, 0)  # one block's vector differs
        assert agreement_fraction(exact, fast) == pytest.approx(0.75)

    def test_selection_agreement_is_jaccard(self):
        assert selection_agreement([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)
        assert selection_agreement([], []) == 1.0


class TestContracts:
    def test_exact_contract_is_degenerate(self):
        assert EXACT_CONTRACT.is_exact
        assert EXACT_CONTRACT.nn_logits.atol == 0.0
        assert EXACT_CONTRACT.sad_argmin.min_agreement == 1.0

    def test_fast_contract_budgets_positive(self):
        assert not FAST_CONTRACT.is_exact
        assert FAST_CONTRACT.nn_logits.atol > 0
        assert FAST_CONTRACT.nn_logits.rtol > 0
        assert 0 < FAST_CONTRACT.nn_classes.min_agreement < 1
        assert 0 < FAST_CONTRACT.sad_argmin.min_agreement < 1
        assert FAST_CONTRACT.sad_tie.atol > 0

    def test_resolution(self):
        assert resolve_contract("exact") is EXACT_CONTRACT
        assert resolve_contract("fast") is FAST_CONTRACT
        with pytest.raises(ConfigurationError):
            resolve_contract("fp16")

    def test_activation_dtype(self):
        assert activation_dtype("exact") is np.float64
        assert activation_dtype("fast") is np.float32

    def test_describe_mentions_mode(self):
        assert "exact" in EXACT_CONTRACT.describe()
        assert "fast" in FAST_CONTRACT.describe()

    def test_unknown_mode_rejected_in_contract(self):
        with pytest.raises(ConfigurationError):
            NumericContract(mode="fp16", nn_logits=ToleranceBudget(),
                            nn_classes=ToleranceBudget(),
                            detections=ToleranceBudget(),
                            sad_values=ToleranceBudget(),
                            sad_argmin=ToleranceBudget(),
                            sad_tie=ToleranceBudget())


class TestSystemConfigPrecision:
    def test_default_is_exact(self, monkeypatch):
        monkeypatch.delenv(PRECISION_ENV, raising=False)
        config = SystemConfig()
        assert config.precision == "exact"
        assert config.contract is EXACT_CONTRACT

    def test_fast_selects_fast_contract(self):
        config = SystemConfig(precision="fast")
        assert config.contract is FAST_CONTRACT

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(precision="fp16")
        with pytest.raises(ConfigurationError):
            validate_precision("double")

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(PRECISION_ENV, "fast")
        assert SystemConfig().precision == "fast"
        # An explicit argument always wins over the environment.
        assert SystemConfig(precision="exact").precision == "exact"
        monkeypatch.setenv(PRECISION_ENV, "fp16")
        with pytest.raises(ConfigurationError):
            SystemConfig()

    def test_with_bandwidth_preserves_precision(self):
        config = SystemConfig(precision="fast").with_bandwidth(10.0)
        assert config.precision == "fast"

    def test_precision_modes_exported(self):
        assert set(PRECISION_MODES) == {"exact", "fast"}
