"""Differential coverage of the online-adaptation path: exact vs fast.

The drift detectors and the re-tune controller consume the analysis pass,
so the fast kernels get the same treatment as the offline pipeline: the
per-chunk scene statistics must agree within the detection budget, and
the *decisions* — where the monitor retunes, and to what — must either
coincide or disagree only on near-tie windows where the F1 gain was
within the tie budget anyway.
"""

import numpy as np
import pytest

from repro.adapt import AdaptiveConfig, DriftMonitor, chunk_scene, mean_luma
from repro.codec.scenecut import SceneCutAnalyzer
from repro.contracts import FAST_CONTRACT, agreement_fraction
from repro.core.tuner import SemanticEncoderTuner
from repro.video import make_scenario
from repro.video.events import EventTimeline
from repro.video.synthetic import SyntheticScene

CHUNK_SECONDS = 2.0

#: An applied retune whose window F1 gain is below this is a near-tie:
#: the other precision is allowed to miss (or differently resolve) it.
NEAR_TIE_F1_BUDGET = 0.02


@pytest.fixture(scope="module")
def drifting_frames():
    """Render the drifting day->night clip once; both precisions share it."""
    profile = make_scenario("drifting", duration_seconds=54.0,
                            render_scale=0.12, seed=11)
    scene = SyntheticScene(profile)
    frames = [scene.frame_array(index) for index in range(profile.num_frames)]
    return {
        "frames": frames,
        "labels": scene.script.frame_labels(),
        "lumas": [mean_luma(frame) for frame in frames],
        "fps": profile.fps,
    }


def adapt_pipeline(clip, precision):
    """Analyse -> chunk -> warm-up tune -> drift-monitor, one precision."""
    analyzer = SceneCutAnalyzer(precision=precision)
    activities = [analyzer.analyze_next(frame) for frame in clip["frames"]]
    per_chunk = int(round(CHUNK_SECONDS * clip["fps"]))
    scenes = []
    for index in range(len(activities) // per_chunk):
        lo, hi = index * per_chunk, (index + 1) * per_chunk
        scenes.append(chunk_scene(
            activities[lo:hi], clip["labels"][lo:hi],
            mean_brightness=float(np.mean(clip["lumas"][lo:hi]))))
    warm = max(len(scenes) // 4, 3)
    warm_activities = [activity for scene in scenes[:warm]
                       for activity in scene.activities]
    warm_labels = [frame for scene in scenes[:warm]
                   for frame in scene.frame_labels]
    frozen = SemanticEncoderTuner(precision=precision).tune_from_activities(
        warm_activities,
        EventTimeline.from_frame_labels(warm_labels)).best_parameters
    monitor = DriftMonitor(AdaptiveConfig(initial_parameters=frozen,
                                          precision=precision))
    decisions = []
    for index, scene in enumerate(scenes):
        decision = monitor.observe(scene, now=index * CHUNK_SECONDS)
        if decision is not None:
            decisions.append(decision)
    return {"scenes": scenes, "frozen": frozen, "decisions": decisions}


@pytest.fixture(scope="module")
def exact_run(drifting_frames):
    return adapt_pipeline(drifting_frames, "exact")


@pytest.fixture(scope="module")
def fast_run(drifting_frames):
    return adapt_pipeline(drifting_frames, "fast")


class TestSceneStatsAgreement:
    def test_brightness_is_precision_independent(self, exact_run, fast_run):
        # mean_luma never touches the fast kernels: bit-equal, not close.
        assert ([scene.stats.mean_brightness
                 for scene in exact_run["scenes"]]
                == [scene.stats.mean_brightness
                    for scene in fast_run["scenes"]])

    def test_novelty_within_detection_budget(self, exact_run, fast_run):
        exact = np.array([scene.stats.mean_novelty
                          for scene in exact_run["scenes"]])
        fast = np.array([scene.stats.mean_novelty
                         for scene in fast_run["scenes"]])
        assert np.max(np.abs(fast - exact)) <= 0.02

    def test_scenecut_rate_agreement(self, exact_run, fast_run):
        exact = [scene.stats.scenecut_rate for scene in exact_run["scenes"]]
        fast = [scene.stats.scenecut_rate for scene in fast_run["scenes"]]
        assert agreement_fraction(
            [rate > 0.0 for rate in exact],
            [rate > 0.0 for rate in fast]) >= (
            FAST_CONTRACT.detections.min_agreement)


class TestRetuneDecisionAgreement:
    def test_exact_path_applies_a_retune(self, exact_run):
        # Guard against the suite passing vacuously on an empty history.
        assert any(decision.applied for decision in exact_run["decisions"])

    def test_warmup_tunes_agree_or_near_tie(self, exact_run, fast_run):
        if exact_run["frozen"] == fast_run["frozen"]:
            return
        # Different warm-up winners are only tolerable when the fast
        # winner was a near-tie on the exact grid.
        warm_scenes = exact_run["scenes"][:max(
            len(exact_run["scenes"]) // 4, 3)]
        activities = [activity for scene in warm_scenes
                      for activity in scene.activities]
        labels = [frame for scene in warm_scenes
                  for frame in scene.frame_labels]
        result = SemanticEncoderTuner().tune_from_activities(
            activities, EventTimeline.from_frame_labels(labels))
        fast_cell = result.score_of(fast_run["frozen"])
        assert fast_cell is not None
        assert (result.best.score.f1 - fast_cell.score.f1
                <= NEAR_TIE_F1_BUDGET)

    def test_retune_points_agree_or_near_tie(self, exact_run, fast_run):
        exact_applied = {decision.time: decision
                         for decision in exact_run["decisions"]
                         if decision.applied}
        fast_applied = {decision.time: decision
                        for decision in fast_run["decisions"]
                        if decision.applied}
        # A retune only one precision applied must have been a near-tie:
        # its window F1 gain sat within the tie budget.
        for time in set(exact_applied) ^ set(fast_applied):
            decision = exact_applied.get(time) or fast_applied[time]
            assert (decision.new_f1 - decision.old_f1
                    <= NEAR_TIE_F1_BUDGET), (
                f"precision-dependent retune at t={time} was not a "
                f"near-tie: {decision.old_f1:.4f} -> {decision.new_f1:.4f}")
        # Retunes both applied must agree on the winner, or disagree only
        # between winners whose window scores were within the budget.
        for time in set(exact_applied) & set(fast_applied):
            exact_decision = exact_applied[time]
            fast_decision = fast_applied[time]
            assert (exact_decision.new == fast_decision.new
                    or abs(exact_decision.new_f1 - fast_decision.new_f1)
                    <= NEAR_TIE_F1_BUDGET)

    def test_suppressed_noops_agree_on_timing(self, exact_run, fast_run):
        # The no-op (tie-equal) confirmations are part of the decision
        # stream too; their timing comes from the detectors, which must
        # agree here because the statistics agreed above.
        exact_times = [decision.time for decision in exact_run["decisions"]]
        fast_times = [decision.time for decision in fast_run["decisions"]]
        assert agreement_fraction(
            [time in fast_times for time in exact_times],
            [True] * len(exact_times)) >= (
            FAST_CONTRACT.detections.min_agreement)
