"""Differential exact-vs-fast harness for the motion search.

The fast search computes float32 SADs with a dot-product reduction and
falls back to exact float64 argmin on near-ties.  The contract under test
(:data:`repro.contracts.FAST_CONTRACT`):

* SAD surfaces stay inside the ``sad_values`` elementwise budget,
* motion vectors agree with the exact search at ``sad_argmin`` rate, and
  *exactly* on adversarial tie cases (the fallback resolves them with the
  exact first-candidate-wins rule),
* the default (exact) search remains bit-identical to the seed algorithm.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.blocks import pad_plane, to_blocks
from repro.codec.motion import (candidate_offsets, estimate_motion,
                                shift_plane)
from repro.contracts import FAST_CONTRACT, agreement_fraction
from repro.errors import ConfigurationError
from repro.video import SyntheticScene, make_scenario

BLOCK_SIZE = 8


def reference_motion_search(reference, current, block_size, search_radius,
                            search_step=1):
    """The seed's per-candidate motion search (the bit-identity anchor)."""
    reference = pad_plane(np.asarray(reference, dtype=np.float64), block_size)
    current = pad_plane(np.asarray(current, dtype=np.float64), block_size)
    current_blocks = to_blocks(current, block_size)
    blocks_y, blocks_x = current_blocks.shape[:2]
    best_sad = np.full((blocks_y, blocks_x), np.inf)
    best_vector = np.zeros((blocks_y, blocks_x, 2), dtype=np.int16)
    zero_sad = None
    for dy, dx in candidate_offsets(search_radius, search_step):
        predicted = shift_plane(reference, dy, dx)
        sad = np.abs(to_blocks(predicted, block_size)
                     - current_blocks).sum(axis=(2, 3))
        if (dy, dx) == (0, 0):
            zero_sad = sad
        better = sad < best_sad
        best_sad = np.where(better, sad, best_sad)
        best_vector[better] = (dy, dx)
    return best_vector, best_sad, zero_sad


def plane_pair(rng, height, width, noise=2.0, shift=(0, 0)):
    """A reference plane and a shifted+noisy current plane."""
    reference = rng.uniform(0.0, 255.0, size=(height, width))
    current = shift_plane(reference, *shift)
    current = current + rng.normal(0.0, noise, size=current.shape)
    return reference, np.clip(current, 0.0, 255.0)


class TestSadBudget:
    @settings(max_examples=15, deadline=None)
    @given(height=st.integers(16, 48), width=st.integers(16, 48),
           dy=st.integers(-2, 2), dx=st.integers(-2, 2),
           seed=st.integers(0, 2**31 - 1))
    def test_fast_sads_within_budget(self, height, width, dy, dx, seed):
        rng = np.random.default_rng(seed)
        reference, current = plane_pair(rng, height, width, shift=(dy, dx))
        exact = estimate_motion(reference, current, BLOCK_SIZE, 3)
        fast = estimate_motion(reference, current, BLOCK_SIZE, 3,
                               precision="fast")
        budget = FAST_CONTRACT.sad_values
        assert budget.values_within(exact.block_sad, fast.block_sad), (
            f"violation={budget.max_violation(exact.block_sad, fast.block_sad)}")
        assert budget.values_within(exact.zero_sad, fast.zero_sad)

    @settings(max_examples=15, deadline=None)
    @given(height=st.integers(16, 48), width=st.integers(16, 48),
           dy=st.integers(-2, 2), dx=st.integers(-2, 2),
           seed=st.integers(0, 2**31 - 1))
    def test_fast_vectors_meet_agreement_budget(self, height, width, dy, dx,
                                                seed):
        rng = np.random.default_rng(seed)
        reference, current = plane_pair(rng, height, width, shift=(dy, dx))
        exact = estimate_motion(reference, current, BLOCK_SIZE, 3)
        fast = estimate_motion(reference, current, BLOCK_SIZE, 3,
                               precision="fast")
        assert agreement_fraction(exact.vectors, fast.vectors) >= (
            FAST_CONTRACT.sad_argmin.min_agreement)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), step=st.integers(1, 2))
    def test_search_step_and_radius_variants(self, seed, step):
        rng = np.random.default_rng(seed)
        reference, current = plane_pair(rng, 32, 40, shift=(1, -1))
        for radius in (0, 1, 3):
            exact = estimate_motion(reference, current, BLOCK_SIZE, radius, step)
            fast = estimate_motion(reference, current, BLOCK_SIZE, radius, step,
                                   precision="fast")
            assert agreement_fraction(exact.vectors, fast.vectors) >= (
                FAST_CONTRACT.sad_argmin.min_agreement)
            assert FAST_CONTRACT.sad_values.values_within(exact.block_sad,
                                                          fast.block_sad)


class TestAdversarialTies:
    def test_constant_plane_all_candidates_tie(self):
        """Every candidate scores 0 on a flat plane: the tie fallback must
        reproduce the exact first-candidate-wins rule (origin)."""
        flat = np.full((40, 48), 127.0)
        exact = estimate_motion(flat, flat, BLOCK_SIZE, 3)
        fast = estimate_motion(flat, flat, BLOCK_SIZE, 3, precision="fast")
        assert np.array_equal(exact.vectors, fast.vectors)
        assert not fast.vectors.any()
        assert np.array_equal(exact.block_sad, fast.block_sad)

    def test_periodic_pattern_ties_between_shifts(self):
        """A pattern with period == 2 makes shifts of +-2 exact ties."""
        xx = np.arange(48)
        pattern = np.tile((xx % 2) * 100.0, (40, 1))
        exact = estimate_motion(pattern, pattern, BLOCK_SIZE, 2)
        fast = estimate_motion(pattern, pattern, BLOCK_SIZE, 2,
                               precision="fast")
        assert np.array_equal(exact.vectors, fast.vectors)
        assert np.array_equal(exact.block_sad, fast.block_sad)

    def test_two_non_origin_candidates_near_tie_everywhere(self):
        """The midpoint of two shifts makes both shift candidates score
        SADs equal to within float64 rounding on every block.  Where the
        winner is decided by a ~1e-13 gap the two paths may legitimately
        disagree (different float64 summation orders) — that is exactly
        what the ``sad_argmin`` budget exists for — but any disagreement
        must sit on such a vanishing gap, and the SAD surface itself must
        stay inside the value budget."""
        rng = np.random.default_rng(7)
        reference = rng.uniform(0.0, 255.0, size=(40, 48))
        current = 0.5 * (shift_plane(reference, 0, 1)
                         + shift_plane(reference, 0, -1))
        exact = estimate_motion(reference, current, BLOCK_SIZE, 2)
        fast = estimate_motion(reference, current, BLOCK_SIZE, 2,
                               precision="fast")
        assert FAST_CONTRACT.sad_values.values_within(exact.block_sad,
                                                      fast.block_sad)
        disagree = ~np.all(exact.vectors == fast.vectors, axis=2)
        gaps = np.abs(exact.block_sad[disagree] - fast.block_sad[disagree])
        assert np.all(gaps <= 1e-9), "fast picked a clearly worse candidate"

    def test_sub_margin_gradient_resolves_exactly(self):
        """SAD gaps far below the tie margin trigger the exact fallback on
        every block, so fast vectors equal exact vectors outright."""
        reference = np.tile(np.arange(48) * 1e-5, (40, 1))
        exact = estimate_motion(reference, reference, BLOCK_SIZE, 2)
        fast = estimate_motion(reference, reference, BLOCK_SIZE, 2,
                               precision="fast")
        assert np.array_equal(exact.vectors, fast.vectors)
        assert not fast.vectors.any()

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_uint8_footage_is_sad_exact(self, seed):
        """Integer-valued planes sum exactly in float32 (< 2**24), so the
        fast SAD surface is equal, not merely close."""
        rng = np.random.default_rng(seed)
        reference = rng.integers(0, 256, size=(32, 32)).astype(np.float64)
        current = rng.integers(0, 256, size=(32, 32)).astype(np.float64)
        exact = estimate_motion(reference, current, BLOCK_SIZE, 2)
        fast = estimate_motion(reference, current, BLOCK_SIZE, 2,
                               precision="fast")
        assert np.array_equal(exact.block_sad, fast.block_sad)
        assert np.array_equal(exact.vectors, fast.vectors)


class TestExactStaysExact:
    """The default search must remain bit-identical to the seed algorithm."""

    @settings(max_examples=10, deadline=None)
    @given(height=st.integers(16, 40), width=st.integers(16, 40),
           seed=st.integers(0, 2**31 - 1))
    def test_exact_matches_seed_reference(self, height, width, seed):
        rng = np.random.default_rng(seed)
        reference, current = plane_pair(rng, height, width, shift=(1, 1))
        field = estimate_motion(reference, current, BLOCK_SIZE, 2)
        ref_vectors, ref_sad, ref_zero = reference_motion_search(
            reference, current, BLOCK_SIZE, 2)
        assert np.array_equal(field.vectors, ref_vectors)
        assert np.array_equal(field.block_sad, ref_sad)
        assert np.array_equal(field.zero_sad, ref_zero)

    def test_scenario_frames_exact_identity(self):
        for name in ("jackson_square", "night"):
            profile = make_scenario(name, duration_seconds=1.0,
                                    render_scale=0.08)
            video = SyntheticScene(profile).video()
            frames = [frame.to_grayscale().astype(np.float64)
                      for frame in video.frames()][:2]
            field = estimate_motion(frames[0], frames[1], BLOCK_SIZE, 3)
            ref_vectors, ref_sad, _ = reference_motion_search(
                frames[0], frames[1], BLOCK_SIZE, 3)
            assert np.array_equal(field.vectors, ref_vectors)
            assert np.array_equal(field.block_sad, ref_sad)

    def test_unknown_precision_rejected(self):
        flat = np.zeros((16, 16))
        with pytest.raises(ConfigurationError):
            estimate_motion(flat, flat, BLOCK_SIZE, 1, precision="fp16")
