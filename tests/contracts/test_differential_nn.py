"""Differential exact-vs-fast harness for the NN engine.

Every property here is one side of the fast tolerance contract
(:data:`repro.contracts.FAST_CONTRACT`):

* fast outputs stay inside the ``nn_logits`` elementwise budget,
* fast argmax classifications agree with exact at ``nn_classes`` rate and
  can only disagree on genuine logit near-ties,
* the default (exact) path remains bit-identical: same arrays as before the
  fast path existed, batched == per-example, float64 throughout.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.contracts import FAST_CONTRACT, agreement_fraction
from repro.nn import (NNDetector, SequentialModel, build_yolo_lite,
                      classify_frame, classify_frames)
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Softmax
from repro.video import SyntheticScene, make_scenario


@pytest.fixture(scope="module")
def tiny_model():
    """A small but multi-stage YoloLite (fast enough for hypothesis)."""
    return build_yolo_lite(input_size=(16, 16), width_multiplier=0.25)


@pytest.fixture(scope="module")
def scenario_frames():
    """A few frames from daylight and adversarial night scenarios."""
    frames = []
    for name in ("jackson_square", "night"):
        profile = make_scenario(name, duration_seconds=2.0, render_scale=0.08)
        video = SyntheticScene(profile).video()
        for frame in video.frames():
            frames.append(frame.to_grayscale())
            if len(frames) % 8 == 0:
                break
    return frames


def batch_strategy():
    return st.integers(min_value=1, max_value=5)


class TestLogitBudget:
    @settings(max_examples=15, deadline=None)
    @given(batch=batch_strategy(), seed=st.integers(0, 2**31 - 1))
    def test_fast_probabilities_within_budget(self, tiny_model, batch, seed):
        rng = np.random.default_rng(seed)
        inputs = rng.normal(0.0, 1.0, size=(batch, *tiny_model.input_shape))
        exact = tiny_model.forward(inputs)
        fast = tiny_model.forward(inputs, precision="fast")
        assert fast.dtype == np.float32
        assert FAST_CONTRACT.nn_logits.values_within(exact, fast), (
            f"violation={FAST_CONTRACT.nn_logits.max_violation(exact, fast)}")

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_forward_range_split_point_also_within_budget(self, tiny_model, seed):
        """The edge/cloud split ships a fast intermediate activation."""
        rng = np.random.default_rng(seed)
        inputs = rng.normal(0.0, 1.0, size=(2, *tiny_model.input_shape))
        split = tiny_model.num_layers // 2
        exact_mid = tiny_model.forward_range(inputs, 0, split)
        fast_mid = tiny_model.forward_range(inputs, 0, split, "fast")
        exact = tiny_model.forward_range(exact_mid, split, tiny_model.num_layers)
        fast = tiny_model.forward_range(fast_mid, split,
                                        tiny_model.num_layers, "fast")
        assert FAST_CONTRACT.nn_logits.values_within(exact, fast)


class TestClassAgreement:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_agreement_and_disagreements_are_near_ties(self, tiny_model, seed):
        rng = np.random.default_rng(seed)
        inputs = rng.normal(0.0, 1.0, size=(24, *tiny_model.input_shape))
        exact_idx, exact_out = tiny_model.predict_classes(inputs)
        fast_idx, fast_out = tiny_model.predict_classes(inputs, "fast")
        assert agreement_fraction(exact_idx, fast_idx) >= (
            FAST_CONTRACT.nn_classes.min_agreement)
        # Any disagreement must be a genuine near-tie: the exact margin
        # between the two top classes fits inside the logit budget.
        matrix = exact_out.reshape(exact_out.shape[0], -1)
        for example in np.nonzero(exact_idx != fast_idx)[0]:
            top_two = np.sort(matrix[example])[-2:]
            margin = float(top_two[1] - top_two[0])
            allowed = 2.0 * float(
                FAST_CONTRACT.nn_logits.margin(top_two).max())
            assert margin <= allowed, (
                f"fast argmax flipped on a clear margin {margin}")

    def test_adversarial_logit_tie(self):
        """A handcrafted dead-tie output stays inside the contract."""
        model = SequentialModel([Dense(4, 2, name="tie"), Softmax("sm")],
                                input_shape=(4,))
        dense = model.layers[0]
        dense.weights = np.array([[1.0, 1.0, 0.0, 0.0],
                                  [0.0, 0.0, 1.0, 1.0]])
        dense.bias = np.zeros(2)
        inputs = np.array([[0.5, 0.25, 0.25, 0.5]])  # both logits == 0.75
        exact_idx, _ = model.predict_classes(inputs)
        fast_idx, fast_out = model.predict_classes(inputs, "fast")
        # Softmax of a tie is (0.5, 0.5) in both modes (within budget), and
        # argmax resolves to the first class in both modes.
        assert FAST_CONTRACT.nn_logits.values_within([0.5, 0.5],
                                                     fast_out.ravel())
        assert exact_idx[0] == fast_idx[0] == 0


class TestClassifierSurfaces:
    def test_classify_frames_agreement_on_scenarios(self, scenario_frames):
        model = build_yolo_lite()
        exact_labels, exact_probs = classify_frames(model, scenario_frames)
        fast_labels, fast_probs = classify_frames(model, scenario_frames,
                                                  precision="fast")
        assert agreement_fraction(exact_labels, fast_labels) >= (
            FAST_CONTRACT.nn_classes.min_agreement)
        assert FAST_CONTRACT.nn_logits.values_within(exact_probs, fast_probs)

    def test_classify_frame_fast_single(self, scenario_frames):
        model = build_yolo_lite()
        label, probabilities = classify_frame(model, scenario_frames[0],
                                              precision="fast")
        assert probabilities.dtype == np.float32
        assert label in model.classes

    def test_nn_detector_fast_agreement(self, scenario_frames):
        model = build_yolo_lite()
        exact = NNDetector(model).detect_batch(
            list(range(len(scenario_frames))), scenario_frames)
        fast = NNDetector(model, precision="fast").detect_batch(
            list(range(len(scenario_frames))), scenario_frames)
        assert agreement_fraction(exact, fast) >= (
            FAST_CONTRACT.detections.min_agreement)


class TestExactStaysExact:
    """precision="exact" (the default) must remain bit-identical."""

    @settings(max_examples=10, deadline=None)
    @given(batch=batch_strategy(), seed=st.integers(0, 2**31 - 1))
    def test_default_equals_explicit_exact_and_is_float64(self, tiny_model,
                                                          batch, seed):
        rng = np.random.default_rng(seed)
        inputs = rng.normal(0.0, 1.0, size=(batch, *tiny_model.input_shape))
        default = tiny_model.forward(inputs)
        explicit = tiny_model.forward(inputs, precision="exact")
        assert default.dtype == np.float64
        assert np.array_equal(default, explicit)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_exact_batched_equals_per_example_bitwise(self, tiny_model, seed):
        rng = np.random.default_rng(seed)
        inputs = rng.normal(0.0, 1.0, size=(4, *tiny_model.input_shape))
        batched = tiny_model.forward(inputs)
        stacked = np.stack([tiny_model.forward(example) for example in inputs])
        assert np.array_equal(batched, stacked)

    def test_exact_layer_kernels_unchanged_by_fast_state(self):
        """Running the fast path must not perturb subsequent exact runs."""
        conv = Conv2D(2, 3, kernel_size=3, name="c", seed=5)
        dense = Dense(12, 4, name="d", seed=5)
        rng = np.random.default_rng(0)
        feature_map = rng.normal(size=(2, 2, 6, 6))
        vector = rng.normal(size=(3, 12))
        conv_before = conv.forward(feature_map)
        dense_before = dense.forward(vector)
        conv.forward(feature_map.astype(np.float32))
        dense.forward(vector.astype(np.float32))
        assert np.array_equal(conv.forward(feature_map), conv_before)
        assert np.array_equal(dense.forward(vector), dense_before)

    def test_fast_path_sees_weight_updates(self):
        """Assigning new weights after a fast run must affect the next fast
        run — the float32 kernels are derived per call, never cached."""
        dense = Dense(3, 2, name="d", seed=1)
        conv = Conv2D(1, 1, kernel_size=1, name="c", seed=1)
        vector = np.ones((1, 3), dtype=np.float32)
        feature_map = np.ones((1, 1, 2, 2), dtype=np.float32)
        before_dense = dense.forward(vector)
        before_conv = conv.forward(feature_map)
        dense.weights = dense.weights * 2.0
        conv.weights = conv.weights * 2.0
        assert np.allclose(dense.forward(vector) - dense.bias.astype(np.float32),
                           2.0 * (before_dense - dense.bias.astype(np.float32)))
        assert np.allclose(conv.forward(feature_map) - conv.bias[0],
                           2.0 * (before_conv - conv.bias[0]))

    def test_pool_relu_flatten_preserve_float32(self):
        """Fast activations stay float32 through the parameter-free layers."""
        feature_map = np.random.default_rng(1).normal(
            size=(2, 3, 8, 8)).astype(np.float32)
        pooled = MaxPool2D(2).forward(ReLU().forward(feature_map))
        flat = Flatten().forward(pooled)
        assert pooled.dtype == np.float32
        assert flat.dtype == np.float32
