"""End-to-end differential harness: exact vs fast through the full pipeline.

The unit-level budgets (logits, SADs) are pinned by the sibling modules;
here the whole encode -> seek -> label path runs under both precisions over
real scenarios — including the adversarial flickering ``night`` profile —
and the derived *decisions* (selected key frames, per-frame labels,
workload sample sets) are held to the ``detections`` agreement budget.
"""

import numpy as np
import pytest

from repro import Sieve, SystemConfig
from repro.codec import EncoderParameters, VideoEncoder
from repro.codec.iframe_seeker import IFrameSeeker
from repro.contracts import (FAST_CONTRACT, agreement_fraction,
                             selection_agreement)
from repro.core import build_workload
from repro.datasets.generator import DatasetInstance
from repro.datasets.registry import DatasetSpec
from repro.experiments.common import (ExperimentConfig, dataset_disk_key,
                                      workload_disk_key)
from repro.video import RESOLUTION_720P, SyntheticScene, make_scenario

#: Scenarios the differential suite sweeps: a daylight Table I feed plus
#: the adversarial flickering low-light profile.
DIFFERENTIAL_SCENARIOS = ("jackson_square", "night")

PARAMETERS = EncoderParameters(gop_size=500, scenecut_threshold=250.0)


@pytest.fixture(scope="module", params=DIFFERENTIAL_SCENARIOS)
def scenario_video(request):
    profile = make_scenario(request.param, duration_seconds=12,
                            render_scale=0.08)
    return SyntheticScene(profile).video()


class TestEncoderAgreement:
    def test_keyframe_selection_agreement(self, scenario_video):
        exact = VideoEncoder(PARAMETERS).encode(scenario_video)
        fast = VideoEncoder(PARAMETERS, "fast").encode(scenario_video)
        exact_keys = IFrameSeeker().keyframe_indices(exact)
        fast_keys = IFrameSeeker().keyframe_indices(fast)
        assert selection_agreement(exact_keys, fast_keys) >= (
            FAST_CONTRACT.detections.min_agreement)

    def test_frame_sizes_close(self, scenario_video):
        exact = VideoEncoder(PARAMETERS).encode(scenario_video)
        fast = VideoEncoder(PARAMETERS, "fast").encode(scenario_video)
        exact_sizes = np.array([frame.size_bytes for frame in exact.frames])
        fast_sizes = np.array([frame.size_bytes for frame in fast.frames])
        # Frame types may differ on a few near-tie frames; total volume must
        # stay within a fraction of a percent either way.
        assert fast_sizes.sum() == pytest.approx(exact_sizes.sum(), rel=0.005)

    def test_exact_encode_unchanged_by_precision_arg(self, scenario_video):
        default = VideoEncoder(PARAMETERS).encode(scenario_video)
        explicit = VideoEncoder(PARAMETERS, "exact").encode(scenario_video)
        assert ([frame.size_bytes for frame in default.frames]
                == [frame.size_bytes for frame in explicit.frames])
        assert ([frame.frame_type for frame in default.frames]
                == [frame.frame_type for frame in explicit.frames])


class TestSieveAgreement:
    def test_analyze_video_label_agreement(self, scenario_video):
        # precision pinned explicitly on both sides: under the CI leg that
        # sets REPRO_PRECISION=fast a bare SystemConfig() would default to
        # fast and this differential test would compare fast vs fast.
        exact_result = Sieve(SystemConfig(precision="exact")).analyze_video(
            scenario_video, "cam", parameters=PARAMETERS)
        fast_result = Sieve(SystemConfig(precision="fast")).analyze_video(
            scenario_video, "cam", parameters=PARAMETERS)
        assert selection_agreement(exact_result.keyframe_indices,
                                   fast_result.keyframe_indices) >= (
            FAST_CONTRACT.detections.min_agreement)
        assert agreement_fraction(exact_result.frame_labels,
                                  fast_result.frame_labels) >= (
            FAST_CONTRACT.detections.min_agreement)


class TestWorkloadAgreement:
    @pytest.fixture(scope="class")
    def night_instance(self):
        profile = make_scenario("night", duration_seconds=12, render_scale=0.08)
        spec = DatasetSpec(
            name="night", objects=("car", "person"),
            nominal_resolution=RESOLUTION_720P, fps=30.0,
            paper_duration_hours=4.0,
            description="flickering low-light intersection", has_labels=True)
        return DatasetInstance(spec=spec, profile=profile,
                               video=SyntheticScene(profile).video())

    def test_workload_sample_sets_agree(self, night_instance):
        exact = build_workload(night_instance,
                               config=SystemConfig(precision="exact"))
        fast = build_workload(night_instance,
                              config=SystemConfig(precision="fast"))
        assert exact.num_frames == fast.num_frames
        assert selection_agreement(exact.semantic_samples,
                                   fast.semantic_samples) >= (
            FAST_CONTRACT.detections.min_agreement)
        # The MSE/uniform baselines never touch the fast kernels, so their
        # sample sets must be equal outright.
        assert exact.mse_samples == fast.mse_samples
        assert fast.semantic_bytes == pytest.approx(exact.semantic_bytes,
                                                    rel=0.005)


class TestCacheSeparation:
    def test_fast_and_exact_sessions_never_share_artifacts(self):
        config = ExperimentConfig.quick()
        base = EncoderParameters()
        assert (dataset_disk_key("jackson_square", config, "full", base,
                                 "exact")
                != dataset_disk_key("jackson_square", config, "full", base,
                                    "fast"))
        assert (workload_disk_key("jackson_square", config, "full", base,
                                  SystemConfig(precision="exact"), 0.95, 5.0)
                != workload_disk_key("jackson_square", config, "full", base,
                                     SystemConfig(precision="fast"), 0.95,
                                     5.0))
