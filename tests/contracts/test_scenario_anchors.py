"""Bit-identity anchors for the default scenario profiles.

The scenario DSL (:mod:`repro.video.transforms`) grows ``SceneProfile``
with weather, day-night, occlusion and camera-fault fields.  Every one of
them defaults to an *exact no-op*: no extra RNG draw, no extra float
operation, so the eight shipped profiles render bit-for-bit the frames the
pre-DSL generator produced.  These hashes were captured on that generator
and must never change for the default profiles — any DSL extension that
moves them is a regression, not a retune.

Each anchor digests three frames (first, middle, last) of a short clip
plus the full sampled schedule, so both the renderer and the script
generator are pinned.
"""

import hashlib

import pytest

from repro.video.scenarios import SCENARIOS, make_scenario
from repro.video.synthetic import SyntheticScene

#: Clip geometry of the anchor renders; small enough to hash every scenario
#: in a few seconds, long enough to cover multiple object visits.
ANCHOR_DURATION = 4.0
ANCHOR_SCALE = 0.05

#: sha256 of (frames [0, n//2, n-1] + schedule) per default scenario,
#: captured before the scenario DSL landed.
ANCHOR_HASHES = {
    "jackson_square": "24ff4c8f9fdab0b87ed82a62a1894c6f4a110179fc591e7e969181ac5eda7b6f",
    "coral_reef": "411f4c96e66faca7c77e03f0cd10f08ce5393b342ca750a51b2a6e3c13b6df4c",
    "venice": "7be27eb3430eda0476795c3f627fdbcb8eded1aac9329c8ac2ca3382a8d20bb6",
    "taipei": "c20f5b8d2826453082cec889781e0b207b615ca6aedc172712fc63927f28e082",
    "amsterdam": "eec985fbedf79e2d8f9f50c297429b1afa474d7ac9f68c7671f6118a17f17d0c",
    "highway": "40fd537be9988fa93aa23368aee4d61aebb575516b177bf9d1407a07aedef50b",
    "night": "e98858aaa53a2a3bb3b02d2839814ae2b5eb2714a1be4358ae543df7c8e2eca4",
    "drifting": "2d2761508f6358451851051222ccf7ef98f31cac7457dfde384b1ce69af262e4",
}


def scenario_anchor_hash(name: str) -> str:
    """Digest the anchor frames and schedule of one default scenario."""
    profile = make_scenario(name, duration_seconds=ANCHOR_DURATION,
                            render_scale=ANCHOR_SCALE)
    scene = SyntheticScene(profile)
    hasher = hashlib.sha256()
    num_frames = profile.num_frames
    for index in (0, num_frames // 2, num_frames - 1):
        hasher.update(scene.frame_array(index).tobytes())
    for track in scene.script.tracks:
        hasher.update(repr((track.label, track.enter_frame, track.exit_frame,
                            round(track.lane_fraction, 12), track.direction,
                            round(track.brightness, 12),
                            round(track.size_jitter, 12))).encode())
    return hasher.hexdigest()


class TestScenarioAnchors:
    @pytest.mark.parametrize("name", sorted(ANCHOR_HASHES))
    def test_default_profile_renders_bit_identically(self, name):
        assert scenario_anchor_hash(name) == ANCHOR_HASHES[name], (
            f"default scenario {name!r} no longer renders the pre-DSL "
            f"frames; a supposedly no-op default is drawing RNG or "
            f"touching pixels")

    def test_every_builtin_scenario_is_anchored(self):
        builtin = {name for name in SCENARIOS if "+" not in name}
        assert builtin == set(ANCHOR_HASHES), (
            "a new base scenario must get an anchor hash here (composed "
            "'+' entries are pinned by the transform no-op tests instead)")
