"""Tests for event-detection front ends, deployment planning and the pipeline."""

import pytest

from repro.codec import EncoderParameters
from repro.config import SystemConfig
from repro.core import (ALL_DEPLOYMENT_MODES, DeploymentMode, EndToEndSimulation,
                        MseEventDetector, NNDeploymentService, NNPlacement,
                        SieveEventDetector, UniformSamplingDetector, VideoWorkload,
                        build_workload, sieve_sampling_sweep)
from repro.datasets import build_dataset
from repro.errors import PipelineError
from repro.nn import build_yolo_lite
from repro.video import RESOLUTION_400P, Resolution


class TestEventDetectors:
    def test_sieve_detector_scores_well(self, tiny_video, tuned_parameters,
                                        tiny_activities):
        detector = SieveEventDetector(tuned_parameters, tiny_activities)
        result = detector.detect(tiny_video, cost_resolution=RESOLUTION_400P)
        assert result.method == "sieve"
        assert result.score is not None and result.score.accuracy > 0.85
        assert 0.0 < result.sampling_fraction < 0.2
        assert result.simulated_fps is not None and result.simulated_fps > 1000

    def test_mse_detector_threshold_fitting(self, tiny_video):
        detector = MseEventDetector()
        target = 0.05
        detector.fit_threshold(tiny_video, target)
        result = detector.detect(tiny_video)
        assert abs(result.sampling_fraction - target) < 0.05
        assert result.score is not None

    def test_mse_detector_requires_threshold(self, tiny_video):
        with pytest.raises(PipelineError):
            MseEventDetector().detect(tiny_video)

    def test_uniform_detector(self, tiny_video):
        detector = UniformSamplingDetector.for_sample_count(
            tiny_video.metadata.num_frames, 10)
        result = detector.detect(tiny_video)
        assert 8 <= len(result.sample_indices) <= 12
        assert result.sample_indices[0] == 0

    def test_sieve_sweep_monotone_sampling(self, tiny_activities, tiny_timeline):
        parameters = [EncoderParameters(gop_size=1000, scenecut_threshold=value)
                      for value in (0, 150, 250, 350)]
        results = sieve_sampling_sweep(tiny_activities, tiny_timeline, parameters)
        fractions = [result.sampling_fraction for result in results]
        assert fractions == sorted(fractions)

    def test_sieve_beats_mse_at_matched_sampling(self, tiny_video, tuned_parameters,
                                                 tiny_activities):
        """The paper's core claim at the scale of the tiny fixture."""
        sieve = SieveEventDetector(tuned_parameters, tiny_activities).detect(tiny_video)
        mse = MseEventDetector()
        mse.fit_threshold(tiny_video, sieve.sampling_fraction)
        mse_result = mse.detect(tiny_video)
        assert sieve.score.accuracy >= mse_result.score.accuracy - 0.02


class TestDeploymentService:
    def test_modes_metadata(self):
        assert DeploymentMode.IFRAME_EDGE_CLOUD_NN.uses_semantic_encoding
        assert not DeploymentMode.MSE_EDGE_CLOUD_NN.uses_semantic_encoding
        assert DeploymentMode.IFRAME_EDGE_EDGE_NN.nn_device == "edge"
        assert len(ALL_DEPLOYMENT_MODES) == 5
        assert len({mode.label for mode in ALL_DEPLOYMENT_MODES}) == 5

    def test_placement_plans(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25)
        service = NNDeploymentService(model)
        assert service.plan(NNPlacement.EDGE_ONLY).split_index == model.num_layers
        assert service.plan(NNPlacement.CLOUD_ONLY).split_index == 0
        split = service.plan(NNPlacement.SPLIT, bandwidth_mbps=30.0)
        assert 0 <= split.split_index <= model.num_layers
        assert split.partition is not None
        with pytest.raises(PipelineError):
            service.plan(NNPlacement.SPLIT)


def synthetic_workload(name="wl", num_frames=3000, iframe_fraction=0.02,
                       resolution=Resolution(1920, 1080)):
    """Hand-built workload for deterministic pipeline arithmetic tests."""
    num_iframes = int(num_frames * iframe_fraction)
    semantic = list(range(0, num_frames, max(num_frames // num_iframes, 1)))
    mse = list(range(0, num_frames, max(num_frames // (num_iframes * 3), 1)))
    return VideoWorkload(
        name=name, num_frames=num_frames, nominal_resolution=resolution,
        semantic_bytes=12_000 * num_frames, default_bytes=10_000 * num_frames,
        semantic_iframe_bytes=400_000 * len(semantic),
        semantic_samples=semantic, mse_samples=mse,
        uniform_samples=list(range(0, num_frames, num_frames // len(semantic))),
        resized_frame_bytes=27_000, timeline=None)


class TestEndToEndSimulation:
    @pytest.fixture(scope="class")
    def reports(self):
        simulation = EndToEndSimulation([synthetic_workload()], SystemConfig())
        return simulation.run_all()

    def test_paper_ordering_of_deployments(self, reports):
        fps = {mode: report.throughput_fps for mode, report in reports.items()}
        three_tier = fps[DeploymentMode.IFRAME_EDGE_CLOUD_NN]
        # (1) the 3-tier deployment is the fastest overall;
        assert three_tier == max(fps.values())
        # (2) every semantic-encoding deployment beats uniform sampling and MSE.
        for semantic_mode in (DeploymentMode.IFRAME_EDGE_CLOUD_NN,
                              DeploymentMode.IFRAME_CLOUD_CLOUD_NN,
                              DeploymentMode.IFRAME_EDGE_EDGE_NN):
            assert fps[semantic_mode] > fps[DeploymentMode.UNIFORM_EDGE_CLOUD_NN]
            assert fps[semantic_mode] > fps[DeploymentMode.MSE_EDGE_CLOUD_NN]
        # (3) MSE is the slowest.
        assert fps[DeploymentMode.MSE_EDGE_CLOUD_NN] == min(fps.values())

    def test_data_transfer_shape(self, reports):
        three_tier = reports[DeploymentMode.IFRAME_EDGE_CLOUD_NN]
        cloud_only = reports[DeploymentMode.IFRAME_CLOUD_CLOUD_NN]
        mse = reports[DeploymentMode.MSE_EDGE_CLOUD_NN]
        uniform = reports[DeploymentMode.UNIFORM_EDGE_CLOUD_NN]
        # Shipping only resized I-frames moves far fewer bytes than the video.
        assert cloud_only.edge_cloud_bytes > 5 * three_tier.edge_cloud_bytes
        # The MSE filter passes more frames, hence more bytes.
        assert mse.edge_cloud_bytes > 1.5 * three_tier.edge_cloud_bytes
        # The semantic encoding is somewhat larger camera->edge.
        assert three_tier.camera_edge_bytes > uniform.camera_edge_bytes

    def test_report_accounting(self, reports):
        report = reports[DeploymentMode.IFRAME_EDGE_CLOUD_NN]
        assert report.total_frames == 3000
        assert report.frames_for_inference == len(synthetic_workload().semantic_samples)
        assert report.total_seconds == pytest.approx(
            report.edge_seconds + report.cloud_seconds + report.transfer_seconds)
        flat = report.as_dict()
        assert flat["throughput_fps"] == pytest.approx(report.throughput_fps)

    def test_corpus_size_sweep(self):
        workloads = [synthetic_workload(f"wl{i}") for i in range(3)]
        simulation = EndToEndSimulation(workloads, SystemConfig())
        sweep = simulation.throughput_vs_corpus_size(
            DeploymentMode.IFRAME_EDGE_CLOUD_NN, [1, 3])
        assert sweep[3].total_frames == 3 * sweep[1].total_frames
        with pytest.raises(PipelineError):
            simulation.throughput_vs_corpus_size(DeploymentMode.IFRAME_EDGE_CLOUD_NN, [4])

    def test_empty_simulation_rejected(self):
        with pytest.raises(PipelineError):
            EndToEndSimulation([], SystemConfig())


class TestBuildWorkload:
    def test_build_workload_from_tiny_dataset(self):
        instance = build_dataset("jackson_square", duration_seconds=15,
                                 render_scale=0.08)
        workload = build_workload(instance)
        assert workload.num_frames == instance.video.metadata.num_frames
        assert workload.nominal_resolution == instance.spec.nominal_resolution
        assert workload.num_semantic_iframes >= 1
        assert workload.semantic_samples[0] == 0
        assert workload.semantic_bytes > workload.semantic_iframe_bytes
        assert len(workload.uniform_samples) >= workload.num_semantic_iframes
        assert workload.samples_for(DeploymentMode.MSE_EDGE_CLOUD_NN) == \
            workload.mse_samples
