"""Tests for the event-detection metrics and the offline tuner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec import EncoderParameters
from repro.core import (DEFAULT_GOP_GRID, DEFAULT_SCENECUT_GRID, ParameterLookupTable,
                        SemanticEncoderTuner, TuningGrid, evaluate_sampling, f1_score,
                        propagate_labels, propagation_accuracy, sampling_fraction)
from repro.core.metrics import (detection_latencies, event_start_accuracy,
                                summarize_latencies)
from repro.errors import ConfigurationError, TuningError
from repro.video import EventTimeline


def make_timeline():
    labels = [set()] * 10 + [{"car"}] * 10 + [set()] * 10
    return EventTimeline.from_frame_labels(labels)


class TestMetrics:
    def test_perfect_sampling(self):
        timeline = make_timeline()
        score = evaluate_sampling(timeline, [0, 10, 20])
        assert score.accuracy == 1.0
        assert score.event_accuracy == 1.0
        assert score.sampling_fraction == pytest.approx(0.1)
        assert score.f1 == pytest.approx(f1_score(1.0, 0.9))

    def test_late_detection_costs_accuracy(self):
        timeline = make_timeline()
        score = evaluate_sampling(timeline, [0, 15, 20])
        # Frames 10-14 keep the stale background label: 5 of 30 frames wrong.
        assert score.accuracy == pytest.approx(25 / 30)
        assert score.event_accuracy == pytest.approx(25 / 30)

    def test_missed_event(self):
        timeline = make_timeline()
        score = evaluate_sampling(timeline, [0])
        assert score.accuracy == pytest.approx(20 / 30)
        latencies = detection_latencies(timeline, [0])
        assert latencies == [0, None, None]
        summary = summarize_latencies(latencies)
        assert summary["miss_rate"] == pytest.approx(2 / 3)

    def test_propagate_labels_before_first_sample(self):
        timeline = make_timeline()
        labels = propagate_labels(timeline, [12])
        assert labels[0] == frozenset()
        assert labels[12] == frozenset({"car"})
        assert labels[25] == frozenset({"car"})  # stale after the event ends

    def test_sampling_every_frame_is_perfect_but_filters_nothing(self):
        timeline = make_timeline()
        score = evaluate_sampling(timeline, list(range(30)))
        assert score.accuracy == 1.0
        assert score.filtering_rate == 0.0
        assert score.f1 == 0.0

    def test_f1_and_fraction_validation(self):
        assert f1_score(0.0, 0.0) == 0.0
        with pytest.raises(ConfigurationError):
            f1_score(-0.1, 0.5)
        with pytest.raises(ConfigurationError):
            sampling_fraction([0], 0)
        with pytest.raises(ConfigurationError):
            evaluate_sampling(make_timeline(), [40])

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=29), max_size=30))
    def test_property_bounds_and_monotonicity(self, samples):
        timeline = make_timeline()
        samples = sorted(samples)
        score = evaluate_sampling(timeline, samples)
        assert 0.0 <= score.accuracy <= 1.0
        assert 0.0 <= score.f1 <= 1.0
        assert score.event_accuracy <= score.accuracy + 1e-9
        # Adding the event-start frames can never reduce accuracy.
        richer = evaluate_sampling(timeline, sorted(set(samples) | {0, 10, 20}))
        assert richer.accuracy >= score.accuracy - 1e-9

    def test_accuracy_variants_agree_when_every_event_sampled(self):
        timeline = make_timeline()
        samples = [0, 13, 20]
        assert propagation_accuracy(timeline, samples) == pytest.approx(
            event_start_accuracy(timeline, samples))


class TestTuner:
    def test_grid_size_matches_paper(self):
        grid = TuningGrid()
        assert grid.num_configurations == 25
        assert grid.gop_sizes == DEFAULT_GOP_GRID
        assert grid.scenecut_thresholds == DEFAULT_SCENECUT_GRID
        assert len(grid.configurations()) == 25
        with pytest.raises(TuningError):
            TuningGrid(gop_sizes=())

    def test_tune_finds_high_f1_configuration(self, tiny_video, tiny_timeline):
        tuner = SemanticEncoderTuner()
        result = tuner.tune(tiny_video, camera_name="tiny")
        assert len(result.results) == 25
        assert result.best.score.f1 == max(r.score.f1 for r in result.results)
        assert result.best.score.f1 > 0.85
        assert result.best.score.accuracy > 0.85
        # The tuned configuration must beat the default one on F1.
        default_score = evaluate_sampling(
            tiny_timeline,
            next(r for r in result.results
                 if r.parameters.gop_size == 250
                 and r.parameters.scenecut_threshold == 40.0).keyframe_indices)
        assert result.best.score.f1 >= default_score.f1

    def test_tune_from_activities_validates_length(self, tiny_activities, tiny_timeline):
        tuner = SemanticEncoderTuner()
        with pytest.raises(TuningError):
            tuner.tune_from_activities(tiny_activities[:-1], tiny_timeline)

    def test_tune_requires_ground_truth(self, tiny_video):
        video_without_truth = tiny_video.materialise()
        video_without_truth.timeline = None
        with pytest.raises(TuningError):
            SemanticEncoderTuner().tune(video_without_truth)

    def test_leaderboard_and_table(self, tiny_activities, tiny_timeline):
        result = SemanticEncoderTuner().tune_from_activities(
            tiny_activities, tiny_timeline, "tiny")
        top = result.leaderboard(3)
        assert len(top) == 3
        assert top[0].score.f1 >= top[1].score.f1 >= top[2].score.f1
        table = result.as_table()
        assert len(table) == 25
        assert {"gop_size", "scenecut", "f1"} <= set(table[0])

    def test_lookup_table(self):
        table = ParameterLookupTable()
        parameters = EncoderParameters(gop_size=500, scenecut_threshold=200)
        table.store("cam", parameters)
        assert "cam" in table and len(table) == 1
        assert table.lookup("cam") == parameters
        assert table.as_dict() == {"cam": parameters}
        with pytest.raises(TuningError):
            table.lookup("other")
