"""Tests for the event-detection metrics and the offline tuner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.codec import EncoderParameters
from repro.codec.scenecut import FrameActivity
from repro.core import (DEFAULT_GOP_GRID, DEFAULT_SCENECUT_GRID, ParameterLookupTable,
                        SemanticEncoderTuner, TuningGrid, evaluate_sampling, f1_score,
                        propagate_labels, propagation_accuracy, sampling_fraction)
from repro.core.metrics import (detection_latencies, event_start_accuracy,
                                summarize_latencies)
from repro.errors import ConfigurationError, TuningError
from repro.video import EventTimeline


def make_timeline():
    labels = [set()] * 10 + [{"car"}] * 10 + [set()] * 10
    return EventTimeline.from_frame_labels(labels)


class TestMetrics:
    def test_perfect_sampling(self):
        timeline = make_timeline()
        score = evaluate_sampling(timeline, [0, 10, 20])
        assert score.accuracy == 1.0
        assert score.event_accuracy == 1.0
        assert score.sampling_fraction == pytest.approx(0.1)
        assert score.f1 == pytest.approx(f1_score(1.0, 0.9))

    def test_late_detection_costs_accuracy(self):
        timeline = make_timeline()
        score = evaluate_sampling(timeline, [0, 15, 20])
        # Frames 10-14 keep the stale background label: 5 of 30 frames wrong.
        assert score.accuracy == pytest.approx(25 / 30)
        assert score.event_accuracy == pytest.approx(25 / 30)

    def test_missed_event(self):
        timeline = make_timeline()
        score = evaluate_sampling(timeline, [0])
        assert score.accuracy == pytest.approx(20 / 30)
        latencies = detection_latencies(timeline, [0])
        assert latencies == [0, None, None]
        summary = summarize_latencies(latencies)
        assert summary["miss_rate"] == pytest.approx(2 / 3)

    def test_propagate_labels_before_first_sample(self):
        timeline = make_timeline()
        labels = propagate_labels(timeline, [12])
        assert labels[0] == frozenset()
        assert labels[12] == frozenset({"car"})
        assert labels[25] == frozenset({"car"})  # stale after the event ends

    def test_sampling_every_frame_is_perfect_but_filters_nothing(self):
        timeline = make_timeline()
        score = evaluate_sampling(timeline, list(range(30)))
        assert score.accuracy == 1.0
        assert score.filtering_rate == 0.0
        assert score.f1 == 0.0

    def test_f1_and_fraction_validation(self):
        assert f1_score(0.0, 0.0) == 0.0
        with pytest.raises(ConfigurationError):
            f1_score(-0.1, 0.5)
        with pytest.raises(ConfigurationError):
            sampling_fraction([0], 0)
        with pytest.raises(ConfigurationError):
            evaluate_sampling(make_timeline(), [40])

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=29), max_size=30))
    def test_property_bounds_and_monotonicity(self, samples):
        timeline = make_timeline()
        samples = sorted(samples)
        score = evaluate_sampling(timeline, samples)
        assert 0.0 <= score.accuracy <= 1.0
        assert 0.0 <= score.f1 <= 1.0
        assert score.event_accuracy <= score.accuracy + 1e-9
        # Adding the event-start frames can never reduce accuracy.
        richer = evaluate_sampling(timeline, sorted(set(samples) | {0, 10, 20}))
        assert richer.accuracy >= score.accuracy - 1e-9

    def test_accuracy_variants_agree_when_every_event_sampled(self):
        timeline = make_timeline()
        samples = [0, 13, 20]
        assert propagation_accuracy(timeline, samples) == pytest.approx(
            event_start_accuracy(timeline, samples))


class TestTuner:
    def test_grid_size_matches_paper(self):
        grid = TuningGrid()
        assert grid.num_configurations == 25
        assert grid.gop_sizes == DEFAULT_GOP_GRID
        assert grid.scenecut_thresholds == DEFAULT_SCENECUT_GRID
        assert len(grid.configurations()) == 25
        with pytest.raises(TuningError):
            TuningGrid(gop_sizes=())

    def test_tune_finds_high_f1_configuration(self, tiny_video, tiny_timeline):
        tuner = SemanticEncoderTuner()
        result = tuner.tune(tiny_video, camera_name="tiny")
        assert len(result.results) == 25
        assert result.best.score.f1 == max(r.score.f1 for r in result.results)
        assert result.best.score.f1 > 0.85
        assert result.best.score.accuracy > 0.85
        # The tuned configuration must beat the default one on F1.
        default_score = evaluate_sampling(
            tiny_timeline,
            next(r for r in result.results
                 if r.parameters.gop_size == 250
                 and r.parameters.scenecut_threshold == 40.0).keyframe_indices)
        assert result.best.score.f1 >= default_score.f1

    def test_tune_from_activities_validates_length(self, tiny_activities, tiny_timeline):
        tuner = SemanticEncoderTuner()
        with pytest.raises(TuningError):
            tuner.tune_from_activities(tiny_activities[:-1], tiny_timeline)

    def test_tune_requires_ground_truth(self, tiny_video):
        video_without_truth = tiny_video.materialise()
        video_without_truth.timeline = None
        with pytest.raises(TuningError):
            SemanticEncoderTuner().tune(video_without_truth)

    def test_leaderboard_and_table(self, tiny_activities, tiny_timeline):
        result = SemanticEncoderTuner().tune_from_activities(
            tiny_activities, tiny_timeline, "tiny")
        top = result.leaderboard(3)
        assert len(top) == 3
        assert top[0].score.f1 >= top[1].score.f1 >= top[2].score.f1
        table = result.as_table()
        assert len(table) == 25
        assert {"gop_size", "scenecut", "f1"} <= set(table[0])

    def test_lookup_table(self):
        table = ParameterLookupTable()
        parameters = EncoderParameters(gop_size=500, scenecut_threshold=200)
        table.store("cam", parameters)
        assert "cam" in table and len(table) == 1
        assert table.lookup("cam") == parameters
        assert table.as_dict() == {"cam": parameters}
        with pytest.raises(TuningError):
            table.lookup("other")

    def test_score_of_looks_up_grid_cells(self, tiny_activities,
                                          tiny_timeline):
        result = SemanticEncoderTuner().tune_from_activities(
            tiny_activities, tiny_timeline, "tiny")
        assert result.score_of(result.best.parameters) is result.best
        off_grid = EncoderParameters(gop_size=123, scenecut_threshold=77)
        assert result.score_of(off_grid) is None


class TestTieBreakDeterminism:
    """F1 ties resolve to the first configuration in grid order.

    The contract the online controller leans on: a tie-equal "winner" is
    recognisable (it IS the first-in-grid-order cell) and treated as a
    no-op rather than an oscillating retune.
    """

    def flat_activities(self, num_frames=50):
        # Zero novelty after the synthetic first frame: no scene cut
        # fires at any threshold, and no GOP under `num_frames` expires,
        # so every one of the 25 grid cells samples exactly frame 0.
        activities = [FrameActivity(
            frame_index=0, inter_cost=0.0, intra_cost=100.0,
            novel_block_fraction=1.0, moving_block_fraction=0.0,
            is_first=True)]
        activities.extend(FrameActivity(
            frame_index=index, inter_cost=0.0, intra_cost=100.0,
            novel_block_fraction=0.0, moving_block_fraction=0.0)
            for index in range(1, num_frames))
        return activities

    def test_grid_order_is_gop_major(self):
        configurations = TuningGrid().configurations()
        assert [(p.gop_size, p.scenecut_threshold)
                for p in configurations[:6]] == [
            (100, 20), (100, 40), (100, 100), (100, 200), (100, 250),
            (250, 20)]

    def test_all_tie_grid_picks_first_in_grid_order(self):
        activities = self.flat_activities()
        timeline = EventTimeline.from_frame_labels([set()] * len(activities))
        result = SemanticEncoderTuner().tune_from_activities(
            activities, timeline, "flat")
        # Handcrafted tie: every cell produced the same keyframes and F1.
        assert {r.keyframe_indices for r in result.results} == {(0,)}
        assert len({r.score.f1 for r in result.results}) == 1
        assert result.best is result.results[0]
        assert result.best_parameters.gop_size == DEFAULT_GOP_GRID[0]
        assert (result.best_parameters.scenecut_threshold
                == DEFAULT_SCENECUT_GRID[0])

    def test_tie_break_is_stable_across_reruns(self):
        activities = self.flat_activities()
        timeline = EventTimeline.from_frame_labels([set()] * len(activities))
        tuner = SemanticEncoderTuner()
        first = tuner.tune_from_activities(activities, timeline)
        second = tuner.tune_from_activities(activities, timeline)
        assert first.best_parameters == second.best_parameters
        assert first.leaderboard(25) == second.leaderboard(25)

    def test_leaderboard_keeps_grid_order_within_tied_groups(self):
        activities = self.flat_activities()
        timeline = EventTimeline.from_frame_labels([set()] * len(activities))
        result = SemanticEncoderTuner().tune_from_activities(
            activities, timeline)
        # sorted() is stable: an all-tie leaderboard IS the grid order.
        assert [r.parameters for r in result.leaderboard(25)] == [
            r.parameters for r in result.results]


class TestVersionedLookupTable:
    def test_store_appends_auditable_versions(self):
        table = ParameterLookupTable()
        v1_params = EncoderParameters(gop_size=500, scenecut_threshold=200)
        v2_params = EncoderParameters(gop_size=100, scenecut_threshold=200)
        first = table.store("cam", v1_params)
        second = table.store("cam", v2_params, time=36.0,
                             trigger="brightness:page-hinkley=36.599",
                             score=0.963514)
        assert (first.version, second.version) == (1, 2)
        assert first.old is None and first.new == v1_params
        assert second.old == v1_params and second.new == v2_params
        assert table.version("cam") == 2
        assert table.lookup("cam") == v2_params  # lookup returns latest
        assert table.history("cam") == (first, second)
        assert table.version("never-stored") == 0
        assert table.history("never-stored") == ()

    def test_history_lines_are_deterministic_and_diffable(self):
        table = ParameterLookupTable()
        table.store("cam-b", EncoderParameters(gop_size=500,
                                               scenecut_threshold=200))
        table.store("cam-a", EncoderParameters(gop_size=250,
                                               scenecut_threshold=40),
                    time=12.0, trigger="novelty:zscore=5.000", score=0.5)
        lines = table.history_lines()
        # Cameras sort lexicographically; unscored stores render f1=nan.
        assert lines == [
            "camera=cam-a t=12.000000 v1 trigger=novelty:zscore=5.000 "
            "old=[none] new=[gop=250, sc=40] f1=0.500000",
            "camera=cam-b t=0.000000 v1 trigger=store "
            "old=[none] new=[gop=500, sc=200] f1=nan",
        ]
