"""Tests for the dataflow engine, built-in operators and the orchestrator."""

import pytest

from repro.cluster.resultdb import ResultDatabase
from repro.dataflow import (DataflowEngine, DecodeKeyframeOperator,
                            DetectObjectsOperator, FilterOperator, FrameTask,
                            FunctionOperator, Orchestrator, ResizeOperator,
                            ResultWriterOperator, SinkOperator, SourceOperator,
                            frame_tasks_from_encoded)
from repro.errors import DataflowError
from repro.net import Channel, NetworkLink
from repro.nn import OracleDetector


def build_linear_engine(items):
    engine = DataflowEngine("test")
    engine.add_operator(SourceOperator("source", items))
    engine.add_operator(FunctionOperator("double", lambda x: x * 2,
                                         cost_fn=lambda x: 0.01))
    engine.add_operator(FilterOperator("evens", lambda x: x % 4 == 0))
    engine.add_operator(SinkOperator("sink"))
    engine.connect("source", "double")
    engine.connect("double", "evens")
    engine.connect("evens", "sink")
    return engine


class TestEngine:
    def test_linear_pipeline(self):
        engine = build_linear_engine([1, 2, 3, 4, 5])
        sinks = engine.run()
        assert sinks["sink"] == [2, 4, 6, 8, 10][1::2]  # doubled values divisible by 4
        assert engine.busy_seconds == pytest.approx(0.05)
        stats = engine.stats()
        assert stats["double"]["processed"] == 5

    def test_duplicate_operator_rejected(self):
        engine = DataflowEngine("dup")
        engine.add_operator(SinkOperator("sink"))
        with pytest.raises(DataflowError):
            engine.add_operator(SinkOperator("sink"))

    def test_unknown_connection_rejected(self):
        engine = DataflowEngine("bad")
        engine.add_operator(SinkOperator("sink"))
        with pytest.raises(DataflowError):
            engine.connect("sink", "missing")

    def test_cycle_rejected(self):
        engine = DataflowEngine("cycle")
        engine.add_operator(FunctionOperator("a", lambda x: x))
        engine.add_operator(FunctionOperator("b", lambda x: x))
        engine.connect("a", "b")
        with pytest.raises(DataflowError):
            engine.connect("b", "a")

    def test_fan_out_delivers_to_all_downstreams(self):
        engine = DataflowEngine("fan")
        engine.add_operator(SourceOperator("source", [1, 2]))
        engine.add_operator(SinkOperator("left"))
        engine.add_operator(SinkOperator("right"))
        engine.connect("source", "left")
        engine.connect("source", "right")
        sinks = engine.run()
        assert sinks["left"] == [1, 2] and sinks["right"] == [1, 2]

    def test_external_inputs_and_reset(self):
        engine = DataflowEngine("ext")
        engine.add_operator(FunctionOperator("inc", lambda x: x + 1))
        engine.add_operator(SinkOperator("sink"))
        engine.connect("inc", "sink")
        assert engine.run({"inc": [1, 2]})["sink"] == [2, 3]
        engine.reset()
        assert engine.run({"inc": [5]})["sink"] == [6]

    def test_empty_engine_rejected(self):
        with pytest.raises(DataflowError):
            DataflowEngine("empty").run()

    def test_function_operator_list_and_drop(self):
        engine = DataflowEngine("multi")
        engine.add_operator(SourceOperator("source", [1, 2, 3]))
        engine.add_operator(FunctionOperator(
            "expand", lambda x: [x, x] if x % 2 else None))
        engine.add_operator(SinkOperator("sink"))
        engine.connect("source", "expand")
        engine.connect("expand", "sink")
        assert engine.run()["sink"] == [1, 1, 3, 3]


class TestBuiltinOperators:
    def test_video_analytics_graph(self, tiny_encoded_payload, tiny_timeline):
        """Decode -> resize -> detect -> record over real I-frame payloads."""
        keyframes = [f for f in tiny_encoded_payload.frames if f.is_keyframe][:4]
        tasks = frame_tasks_from_encoded("tiny", keyframes)
        results = ResultDatabase()
        engine = DataflowEngine("edge")
        engine.add_operator(SourceOperator("events", tasks))
        engine.add_operator(DecodeKeyframeOperator("decode", 0.006))
        engine.add_operator(ResizeOperator("resize", (32, 32), 0.001))
        engine.add_operator(DetectObjectsOperator(
            "detect", OracleDetector(tiny_timeline), 0.02))
        engine.add_operator(ResultWriterOperator("write", results))
        engine.add_operator(SinkOperator("sink"))
        engine.connect("events", "decode")
        engine.connect("decode", "resize")
        engine.connect("resize", "detect")
        engine.connect("detect", "write")
        engine.connect("write", "sink")
        sinks = engine.run()
        assert len(sinks["sink"]) == len(keyframes)
        assert len(results) == len(keyframes)
        first = sinks["sink"][0]
        assert first.pixels is not None and first.pixels.shape == (32, 32)
        assert first.labels == tiny_timeline.labels_at(first.frame_index)
        assert engine.busy_seconds == pytest.approx(len(keyframes) * 0.027)

    def test_operator_type_checking(self):
        operator = DecodeKeyframeOperator("decode")
        with pytest.raises(DataflowError):
            operator.process("not a frame task")

    def test_result_writer_accepts_plain_dict(self):
        store = {}
        writer = ResultWriterOperator("write", store)
        writer.process(FrameTask("v", 3, labels=frozenset({"car"})))
        assert store[("v", 3)] == frozenset({"car"})


class TestOrchestrator:
    def test_edge_to_cloud_handoff(self, tiny_encoded, tiny_timeline):
        keyframes = [f for f in tiny_encoded.frames if f.is_keyframe]
        edge = DataflowEngine("edge")
        edge.add_operator(SourceOperator("seek", frame_tasks_from_encoded(
            "tiny", keyframes)))
        edge.add_operator(SinkOperator("uplink"))
        edge.connect("seek", "uplink")

        results = ResultDatabase()
        cloud = DataflowEngine("cloud")
        cloud.add_operator(DetectObjectsOperator(
            "detect", OracleDetector(tiny_timeline), 0.02))
        cloud.add_operator(ResultWriterOperator("write", results))
        cloud.add_operator(SinkOperator("done"))
        cloud.connect("detect", "write")
        cloud.connect("write", "done")

        link = NetworkLink("edge-cloud", bandwidth_mbps=30.0)
        orchestrator = Orchestrator(edge, cloud, Channel("edge", "cloud", link))
        sinks = orchestrator.run(handoff_sink="uplink", cloud_entry="detect")
        assert len(sinks["done"]) == len(keyframes)
        assert len(results) == len(keyframes)
        assert link.total_bytes == sum(frame.size_bytes for frame in keyframes)
        summary = orchestrator.summary()
        assert summary["transferred_bytes"] == link.total_bytes
        assert summary["compute_seconds"] > 0

    def test_missing_sink_rejected(self, tiny_encoded):
        edge = DataflowEngine("edge")
        edge.add_operator(SourceOperator("seek", []))
        edge.add_operator(SinkOperator("uplink"))
        edge.connect("seek", "uplink")
        cloud = DataflowEngine("cloud")
        cloud.add_operator(SinkOperator("done"))
        orchestrator = Orchestrator(edge, cloud,
                                    Channel("edge", "cloud", NetworkLink("l", 1.0)))
        with pytest.raises(DataflowError):
            orchestrator.run(handoff_sink="nope", cloud_entry="done")
