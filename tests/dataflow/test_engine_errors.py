"""Error-path tests for the dataflow engine's graph construction and run."""

import pytest

from repro.dataflow import (DataflowEngine, FunctionOperator, Operator,
                            SinkOperator, SourceOperator)
from repro.errors import DataflowError


def make_engine(*names):
    engine = DataflowEngine("errors")
    for name in names:
        engine.add_operator(FunctionOperator(name, lambda x: x))
    return engine


class TestGraphConstructionErrors:
    def test_duplicate_operator_rejected(self):
        engine = make_engine("a")
        with pytest.raises(DataflowError, match="already exists"):
            engine.add_operator(SinkOperator("a"))

    def test_empty_operator_name_rejected(self):
        with pytest.raises(DataflowError, match="non-empty"):
            FunctionOperator("", lambda x: x)

    def test_connect_unknown_upstream_rejected(self):
        engine = make_engine("known")
        with pytest.raises(DataflowError, match="unknown operator"):
            engine.connect("missing", "known")

    def test_connect_unknown_downstream_rejected(self):
        engine = make_engine("known")
        with pytest.raises(DataflowError, match="unknown operator"):
            engine.connect("known", "missing")

    def test_duplicate_connection_rejected(self):
        engine = make_engine("a", "b")
        engine.connect("a", "b")
        with pytest.raises(DataflowError, match="already exists"):
            engine.connect("a", "b")

    def test_self_loop_rejected(self):
        engine = make_engine("a")
        with pytest.raises(DataflowError, match="cycle"):
            engine.connect("a", "a")

    def test_two_node_cycle_rejected(self):
        engine = make_engine("a", "b")
        engine.connect("a", "b")
        with pytest.raises(DataflowError, match="cycle"):
            engine.connect("b", "a")

    def test_long_cycle_rejected(self):
        engine = make_engine("a", "b", "c", "d")
        engine.connect("a", "b")
        engine.connect("b", "c")
        engine.connect("c", "d")
        with pytest.raises(DataflowError, match="cycle"):
            engine.connect("d", "a")
        # The failed connect must not have been half-applied: the graph is
        # still acyclic and runnable end to end.
        assert engine.topological_order(strict=True) == ["a", "b", "c", "d"]

    def test_operator_lookup_unknown_name(self):
        engine = make_engine("a")
        with pytest.raises(DataflowError, match="unknown operator"):
            engine.operator("nope")
        with pytest.raises(DataflowError, match="unknown operator"):
            engine.upstreams("nope")
        with pytest.raises(DataflowError, match="unknown operator"):
            engine.downstreams("nope")
        assert engine.has_operator("a") and not engine.has_operator("nope")


class TestExecutionErrors:
    def test_empty_graph_execution_rejected(self):
        with pytest.raises(DataflowError, match="no operators"):
            DataflowEngine("empty").run()

    def test_unknown_external_input_target_rejected(self):
        engine = make_engine("a")
        with pytest.raises(DataflowError, match="external input target"):
            engine.run({"missing": [1, 2]})

    def test_external_input_into_source_rejected(self):
        engine = DataflowEngine("src-input")
        engine.add_operator(SourceOperator("source", [1]))
        engine.add_operator(SinkOperator("sink"))
        engine.connect("source", "sink")
        with pytest.raises(DataflowError, match="source operator"):
            engine.run({"source": [2]})

    def test_source_rejects_direct_input(self):
        source = SourceOperator("source", [1])
        with pytest.raises(DataflowError, match="do not accept inputs"):
            source.process(1)

    def test_base_operator_process_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Operator("abstract").process(1)
