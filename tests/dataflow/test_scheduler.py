"""Tests for the discrete-event scheduler, stations and scheduled engines."""

import pytest

from repro.dataflow import (BatchingPolicy, DataflowEngine, EventScheduler,
                            FilterOperator, FunctionOperator, ScheduledEngine,
                            ServiceStation, SinkOperator, SourceOperator,
                            run_engine, run_engines)
from repro.errors import DataflowError, NetworkError
from repro.net import ContendedLink, NetworkLink


def build_linear_engine(items, name="test", source_cost=0.002):
    engine = DataflowEngine(name)
    engine.add_operator(SourceOperator("source", items,
                                       cost_per_item_seconds=source_cost))
    engine.add_operator(FunctionOperator("double", lambda x: x * 2,
                                         cost_fn=lambda x: 0.01))
    engine.add_operator(FilterOperator("evens", lambda x: x % 4 == 0))
    engine.add_operator(SinkOperator("sink"))
    engine.connect("source", "double")
    engine.connect("double", "evens")
    engine.connect("evens", "sink")
    return engine


class TestEventScheduler:
    def test_events_fire_in_time_then_submission_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(2.0, lambda: fired.append("late"))
        scheduler.schedule(1.0, lambda: fired.append("a"))
        scheduler.schedule(1.0, lambda: fired.append("b"))
        assert scheduler.run() == 3
        assert fired == ["a", "b", "late"]
        assert scheduler.now == pytest.approx(2.0)

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(DataflowError):
            scheduler.schedule(-0.1, lambda: None)

    def test_cannot_schedule_in_the_past(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(DataflowError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_run_until_bound(self):
        scheduler = EventScheduler()
        fired = []
        for delay in (1.0, 2.0, 3.0):
            scheduler.schedule(delay, lambda delay=delay: fired.append(delay))
        assert scheduler.run(until=2.5) == 2
        assert fired == [1.0, 2.0]
        assert scheduler.pending_events == 1
        assert scheduler.now == pytest.approx(2.5)


class TestServiceStation:
    def test_capacity_one_serialises_jobs(self):
        scheduler = EventScheduler()
        station = ServiceStation(scheduler, "edge", capacity=1)
        completions = []
        for _ in range(3):
            station.submit(1.0, on_complete=lambda _:
                           completions.append(scheduler.now))
        scheduler.run()
        assert completions == [pytest.approx(1.0), pytest.approx(2.0),
                               pytest.approx(3.0)]
        assert station.stats.busy_seconds == pytest.approx(3.0)
        assert station.stats.max_queue_depth == 2
        assert station.utilisation(3.0) == pytest.approx(1.0)

    def test_extra_capacity_runs_jobs_in_parallel(self):
        scheduler = EventScheduler()
        station = ServiceStation(scheduler, "cloud", capacity=3)
        completions = []
        for _ in range(3):
            station.submit(1.0, on_complete=lambda _:
                           completions.append(scheduler.now))
        scheduler.run()
        assert all(time == pytest.approx(1.0) for time in completions)
        assert station.stats.max_queue_depth == 0

    def test_invalid_arguments_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(DataflowError):
            ServiceStation(scheduler, "bad", capacity=0)
        station = ServiceStation(scheduler, "ok")
        with pytest.raises(DataflowError):
            station.submit(-1.0)


class TestContendedLink:
    def test_transfers_queue_on_shared_link(self):
        scheduler = EventScheduler()
        link = NetworkLink("wan", bandwidth_mbps=8.0, latency_ms=0.0)
        contended = ContendedLink(scheduler, link)
        done = []
        # 1 MB at 8 Mbps = 1 second each; the second waits for the first.
        contended.submit(int(1e6), "a", on_complete=lambda _:
                         done.append(scheduler.now))
        contended.submit(int(1e6), "b", on_complete=lambda _:
                         done.append(scheduler.now))
        scheduler.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]
        assert link.total_bytes == int(2e6)
        assert link.total_seconds == pytest.approx(2.0)
        assert contended.stats.max_queue_depth == 1

    def test_invalid_arguments_rejected(self):
        scheduler = EventScheduler()
        link = NetworkLink("wan", bandwidth_mbps=8.0)
        with pytest.raises(NetworkError):
            ContendedLink(scheduler, link, channels=0)
        with pytest.raises(NetworkError):
            ContendedLink(scheduler, link).submit(-1)


class TestScheduledEngine:
    def test_single_engine_matches_run_to_completion(self):
        items = [1, 2, 3, 4, 5]
        reference = build_linear_engine(items)
        reference_sinks = reference.run()
        scheduled = build_linear_engine(items)
        sinks = run_engine(scheduled)
        assert sinks == reference_sinks
        assert scheduled.busy_seconds == pytest.approx(reference.busy_seconds)
        assert scheduled.stats() == reference.stats()

    def test_fan_out_matches_run_to_completion(self):
        def build():
            engine = DataflowEngine("fan")
            engine.add_operator(SourceOperator("source", [1, 2, 3]))
            engine.add_operator(SinkOperator("left"))
            engine.add_operator(SinkOperator("right"))
            engine.connect("source", "left")
            engine.connect("source", "right")
            return engine
        assert run_engine(build()) == build().run()

    def test_external_inputs(self):
        engine = DataflowEngine("ext")
        engine.add_operator(FunctionOperator("inc", lambda x: x + 1))
        engine.add_operator(SinkOperator("sink"))
        engine.connect("inc", "sink")
        assert run_engine(engine, external_inputs={"inc": [1, 2]}) == \
            {"sink": [2, 3]}

    def test_unknown_external_input_rejected(self):
        engine = DataflowEngine("ext")
        engine.add_operator(SinkOperator("sink"))
        with pytest.raises(DataflowError):
            ScheduledEngine(EventScheduler(), engine,
                            external_inputs={"missing": [1]})

    def test_external_input_into_source_rejected(self):
        engine = build_linear_engine([1])
        with pytest.raises(DataflowError, match="source operator"):
            ScheduledEngine(EventScheduler(), engine,
                            external_inputs={"source": [2]})

    def test_empty_engine_rejected(self):
        with pytest.raises(DataflowError):
            ScheduledEngine(EventScheduler(), DataflowEngine("empty"))

    def test_double_start_rejected(self):
        engine = build_linear_engine([1])
        scheduled = ScheduledEngine(EventScheduler(), engine).start()
        with pytest.raises(DataflowError):
            scheduled.start()

    def test_operator_service_times_queue_in_virtual_time(self):
        engine = build_linear_engine([1, 2, 3], source_cost=0.0)
        scheduler = EventScheduler()
        scheduled = ScheduledEngine(scheduler, engine).start()
        scheduler.run()
        assert scheduled.finished
        # Three items at 0.01 s each through the serial "double" operator.
        assert scheduled.finish_time == pytest.approx(0.03)
        assert scheduled.operator_stats["double"].busy_seconds == \
            pytest.approx(0.03)
        assert scheduled.operator_stats["double"].max_queue_depth == 2
        latencies = scheduled.latencies()
        assert latencies == sorted(latencies) and len(latencies) == 1

    def test_batching_preserves_totals_with_fewer_events(self):
        items = list(range(12))
        one_by_one = build_linear_engine(items, "single")
        batched = build_linear_engine(items, "batched")
        single_scheduler = EventScheduler()
        ScheduledEngine(single_scheduler, one_by_one).start()
        single_scheduler.run()
        batch_scheduler = EventScheduler()
        ScheduledEngine(batch_scheduler, batched,
                        batching=BatchingPolicy(default_batch=4)).start()
        batch_scheduler.run()
        assert batched.busy_seconds == pytest.approx(one_by_one.busy_seconds)
        assert [op.items for op in batched.operators
                if isinstance(op, SinkOperator)] == \
               [op.items for op in one_by_one.operators
                if isinstance(op, SinkOperator)]
        assert batch_scheduler.events_processed < single_scheduler.events_processed

    def test_batching_policy_validation(self):
        with pytest.raises(DataflowError):
            BatchingPolicy(default_batch=0)
        with pytest.raises(DataflowError):
            BatchingPolicy(per_operator={"x": 0})
        policy = BatchingPolicy(default_batch=2, per_operator={"x": 8})
        assert policy.batch_for("x") == 8 and policy.batch_for("y") == 2

    def test_two_engines_interleave_on_one_clock(self):
        fast = build_linear_engine([1, 2], "fast", source_cost=0.0)
        slow = build_linear_engine(list(range(10)), "slow", source_cost=0.0)
        scheduler = EventScheduler()
        fast_run = ScheduledEngine(scheduler, fast).start()
        slow_run = ScheduledEngine(scheduler, slow).start()
        scheduler.run()
        assert fast_run.finished and slow_run.finished
        # Both engines shared the clock but not each other's stations: the
        # fast engine finishes earlier in the same virtual timeline.
        assert fast_run.finish_time < slow_run.finish_time
        assert fast.busy_seconds == pytest.approx(0.02)
        assert slow.busy_seconds == pytest.approx(0.10)

    def test_run_engines_returns_per_engine_sinks(self):
        engines = [build_linear_engine([1, 2, 3, 4], "a"),
                   build_linear_engine([10, 20], "b")]
        results = run_engines(engines)
        assert results == {"a": {"sink": [4, 8]}, "b": {"sink": [20, 40]}}

    def test_run_engines_rejects_duplicate_names(self):
        engines = [build_linear_engine([1], "dup"),
                   build_linear_engine([2], "dup")]
        with pytest.raises(DataflowError):
            run_engines(engines)

    def test_on_finish_flush_is_delivered(self):
        class Accumulator(FunctionOperator):
            def __init__(self, name):
                super().__init__(name, lambda x: None)
                self.total = 0

            def process(self, item):
                self.total += item
                return self._account(
                    type(self)._empty_result())

            @staticmethod
            def _empty_result():
                from repro.dataflow import OperatorResult
                return OperatorResult()

            def on_finish(self):
                from repro.dataflow import OperatorResult
                return OperatorResult(outputs=[self.total], cost_seconds=0.005)

        engine = DataflowEngine("flush")
        engine.add_operator(SourceOperator("source", [1, 2, 3]))
        engine.add_operator(Accumulator("sum"))
        engine.add_operator(SinkOperator("sink"))
        engine.connect("source", "sum")
        engine.connect("sum", "sink")
        assert run_engine(engine) == {"sink": [6]}
        assert engine.busy_seconds == pytest.approx(0.005)
