"""Property tests for cache-key stability (``diskcache.content_key``).

The on-disk cache is only correct if the same logical spec always hashes
to the same key — across dict insertion orders, numpy dtype aliases of the
same value, and process boundaries — and different specs hash to different
keys.  A key that wobbles turns the cache into a write-only store; a key
that collides serves the wrong artifact.
"""

import json
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.gop import EncoderParameters
from repro.datasets import diskcache
from repro.experiments import ExperimentConfig

#: JSON-representable scalars usable as canonical leaves.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)

#: Nested spec-like values: dicts/lists/tuples of scalars.
specs = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


def shuffled_dicts(value, order):
    """``value`` with every dict's insertion order permuted by ``order``."""
    if isinstance(value, dict):
        keys = sorted(value, key=lambda key: (order(key), key))
        return {key: shuffled_dicts(value[key], order) for key in keys}
    if isinstance(value, list):
        return [shuffled_dicts(item, order) for item in value]
    return value


class TestSameSpecSameKey:
    @given(spec=specs, salt=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=80, deadline=None)
    def test_dict_insertion_order_is_irrelevant(self, spec, salt):
        reordered = shuffled_dicts(spec, order=lambda key: hash((salt, key)))
        assert diskcache.content_key(spec) == diskcache.content_key(reordered)

    @given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_integer_dtype_aliases_share_the_key(self, value):
        base = diskcache.content_key(value)
        for dtype in (np.int32, np.int64):
            assert diskcache.content_key(dtype(value)) == base
        if value >= 0:
            for dtype in (np.uint32, np.uint64):
                assert diskcache.content_key(dtype(value)) == base

    @given(value=st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=60, deadline=None)
    def test_float_dtype_aliases_share_the_key(self, value):
        # width=32 floats are exactly representable in float32, so the
        # float32 alias carries the identical value.
        assert (diskcache.content_key(np.float32(value))
                == diskcache.content_key(float(value)))
        assert (diskcache.content_key(np.float64(value))
                == diskcache.content_key(float(value)))

    @given(spec=specs)
    @settings(max_examples=40, deadline=None)
    def test_keys_are_deterministic_within_a_process(self, spec):
        assert diskcache.content_key(spec) == diskcache.content_key(spec)

    def test_dataclass_and_tuple_orderings(self):
        """The experiment key ingredients (frozen dataclasses) are keyed by
        field value, independent of construction order."""
        a = EncoderParameters(gop_size=120, scenecut_threshold=40.0)
        b = EncoderParameters(scenecut_threshold=40.0, gop_size=120)
        assert diskcache.content_key(a) == diskcache.content_key(b)
        config_a = ExperimentConfig(duration_seconds=8.0, render_scale=0.06)
        config_b = ExperimentConfig(render_scale=0.06, duration_seconds=8.0)
        assert (diskcache.content_key(config_a)
                == diskcache.content_key(config_b))


class TestDifferentSpecDifferentKey:
    @given(left=specs, right=specs)
    @settings(max_examples=80, deadline=None)
    def test_distinct_canonical_specs_get_distinct_keys(self, left, right):
        # The oracle is the canonical JSON serialisation (what the key
        # hashes), not Python equality: ``[False] == [0]`` in Python, but
        # the cache rightly keys booleans and integers apart.
        canonical_left = json.dumps(diskcache._canonical(left),
                                    sort_keys=True)
        canonical_right = json.dumps(diskcache._canonical(right),
                                     sort_keys=True)
        if canonical_left == canonical_right:
            assert (diskcache.content_key(left)
                    == diskcache.content_key(right))
        else:
            assert (diskcache.content_key(left)
                    != diskcache.content_key(right))

    def test_bool_and_int_are_distinct_keys(self):
        """Found by hypothesis: Python conflates ``False == 0`` but the
        cache must not — a boolean flag and an integer 0/1 are different
        spec ingredients."""
        assert diskcache.content_key(False) != diskcache.content_key(0)
        assert diskcache.content_key(True) != diskcache.content_key(1)

    def test_every_experiment_ingredient_moves_the_key(self):
        base = dict(name="jackson_square", split="full", duration=8.0,
                    scale=0.06)
        key = diskcache.content_key(base)
        for field, changed in [("name", "venice"), ("split", "train"),
                               ("duration", 9.0), ("scale", 0.08)]:
            assert diskcache.content_key({**base, field: changed}) != key


#: Computes keys for specs received as JSON on argv; prints them as JSON.
_CHILD_SCRIPT = """
import json
import sys

sys.path.insert(0, sys.argv[1])
from repro.codec.gop import EncoderParameters
from repro.datasets import diskcache
from repro.experiments import ExperimentConfig

specs = json.loads(sys.argv[2])
keys = [diskcache.content_key(spec) for spec in specs]
keys.append(diskcache.content_key(
    EncoderParameters(gop_size=120, scenecut_threshold=40.0)))
keys.append(diskcache.content_key(
    ExperimentConfig(duration_seconds=8.0, render_scale=0.06,
                     datasets=("jackson_square",))))
print(json.dumps(keys))
"""


class TestCrossProcessStability:
    def test_keys_match_across_interpreter_sessions(self):
        """A fresh interpreter (different hash seed, fresh imports) must
        derive the same keys — otherwise the cross-session cache is a
        write-only store."""
        import repro
        src = repro.__file__.rsplit("/repro/", 1)[0]
        json_specs = [
            {"b": 2, "a": [1, 2.5, None], "nested": {"y": False, "x": "s"}},
            ["unicode-é中", 3.14159, -7],
            {"duration": 8.0, "scale": 0.06, "name": "jackson_square"},
        ]
        expected = [diskcache.content_key(spec) for spec in json_specs]
        expected.append(diskcache.content_key(
            EncoderParameters(gop_size=120, scenecut_threshold=40.0)))
        expected.append(diskcache.content_key(
            ExperimentConfig(duration_seconds=8.0, render_scale=0.06,
                             datasets=("jackson_square",))))
        result = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT, src, json.dumps(json_specs)],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert json.loads(result.stdout) == expected

    def test_unpicklable_spec_parts_fail_loudly(self):
        """Anything keyed by memory address must raise rather than produce
        a per-process key (regression guard mirrored from the unit suite,
        kept here because it is the property the rest relies on)."""
        with pytest.raises(TypeError):
            diskcache.content_key(object())
