"""Multi-process cache stress: racing builders + a concurrent LRU sweeper.

Acceptance contract (ISSUE 4): two interpreter sessions racing
``prepare_workload`` on the same content key while an LRU sweep runs
concurrently must leave the cache uncorrupted (a third session rebuilds
entirely from disk), render each clip at most once per session (one
"loser" may duplicate the winner's work, nothing re-renders in a loop),
and end within the configured ``REPRO_CACHE_MAX_BYTES`` budget.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.datasets import diskcache

#: Size of each incompressible filler entry pre-seeding the cache (bytes).
FILLER_BYTES = 1_000_000

#: Number of filler entries; together they exceed the budget, so the
#: concurrent sweeper always has real evictions to perform.
NUM_FILLERS = 12

#: Cache budget: comfortably above the working set of the quick workload
#: build (~2-3 MB), far below fillers + working set (~12 MB+).
BUDGET_BYTES = 8_000_000


def _src_dir():
    return os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")


#: One racing "session": builds the quick workload through every cache
#: layer and reports its perf sections + a result fingerprint as JSON.
_RACER_SCRIPT = """
import json
import sys

sys.path.insert(0, {src!r})
from repro.experiments import ExperimentConfig, prepare_workload
from repro.perf import get_recorder

config = ExperimentConfig(duration_seconds=6.0, render_scale=0.05,
                          datasets=("jackson_square",))
workload = prepare_workload("jackson_square", config)
summary = get_recorder().summary()
print(json.dumps({{
    "sections": {{name: stats["calls"] for name, stats in summary.items()}},
    "fingerprint": [workload.name, workload.num_frames,
                    workload.semantic_bytes, workload.default_bytes,
                    list(workload.semantic_samples),
                    list(workload.mse_samples),
                    list(workload.uniform_samples)],
}}))
"""

#: A concurrent sweeper session: repeatedly enforces the budget while the
#: racers build, mimicking an unrelated warm process storing artifacts.
_SWEEPER_SCRIPT = """
import sys
import time

sys.path.insert(0, {src!r})
from repro.datasets import diskcache

evictions = 0
for _ in range(120):
    evictions += len(diskcache.sweep(max_bytes={budget}).evicted)
    time.sleep(0.05)
print(evictions)
"""


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    # The budget is NOT set in this process: the fillers must be seeded
    # unbudgeted (over budget) so the concurrent sweeper has real work.
    # The racing/sweeping subprocesses get it through their own env.
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    monkeypatch.delenv(diskcache.CACHE_MAX_BYTES_ENV, raising=False)
    return tmp_path


def seed_fillers():
    """Pre-seed the cache with cold filler entries exceeding the budget."""
    rng = np.random.default_rng(99)
    for index in range(NUM_FILLERS):
        payload = rng.integers(0, 255, FILLER_BYTES, dtype=np.int64).astype(
            np.uint8)
        diskcache.store("filler", f"filler-{index:02d}", {"blob": payload})


class TestConcurrentBuildAndSweep:
    def test_race_same_key_with_concurrent_lru_sweep(self, cache_dir):
        seed_fillers()
        env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
                   REPRO_CACHE_MAX_BYTES=str(BUDGET_BYTES))
        racer_script = _RACER_SCRIPT.format(src=_src_dir())
        sweeper_script = _SWEEPER_SCRIPT.format(src=_src_dir(),
                                                budget=BUDGET_BYTES)

        sweeper = subprocess.Popen([sys.executable, "-c", sweeper_script],
                                   env=env, stdout=subprocess.PIPE,
                                   stderr=subprocess.PIPE)
        racers = [subprocess.Popen([sys.executable, "-c", racer_script],
                                   env=env, stdout=subprocess.PIPE,
                                   stderr=subprocess.PIPE)
                  for _ in range(2)]
        outputs = []
        for racer in racers:
            stdout, stderr = racer.communicate(timeout=600)
            assert racer.returncode == 0, stderr.decode()
            outputs.append(json.loads(stdout))
        sweeper_out, sweeper_err = sweeper.communicate(timeout=600)
        assert sweeper.returncode == 0, sweeper_err.decode()

        # No corruption: both racers produced the identical workload.
        assert outputs[0]["fingerprint"] == outputs[1]["fingerprint"]
        # No double-render beyond one loser: each session rendered at most
        # once (a loser duplicates the winner's work, nobody loops).
        for output in outputs:
            assert output["sections"].get("dataset.render", 0) <= 1
            assert output["sections"].get("workload.build", 0) <= 1
        total_renders = sum(output["sections"].get("dataset.render", 0)
                            for output in outputs)
        assert total_renders <= 2
        # The concurrent sweeper actually ran against the racing writers.
        assert int(sweeper_out.decode().strip()) > 0

        # Budget respected after the race (one final sweep settles stores
        # that landed after the sweeper's last pass).
        diskcache.sweep(max_bytes=BUDGET_BYTES)
        assert diskcache.cache_total_bytes() <= BUDGET_BYTES

        # The hot artifacts survived the sweeps (they are the newest): a
        # third session is fully warm — no renders, no tuning, and the
        # same fingerprint, proving the raced entries are readable.
        result = subprocess.run([sys.executable, "-c", racer_script],
                                env=env, capture_output=True, text=True,
                                timeout=600)
        assert result.returncode == 0, result.stderr
        warm = json.loads(result.stdout)
        assert warm["fingerprint"] == outputs[0]["fingerprint"]
        assert "dataset.render" not in warm["sections"]
        assert "workload.build" not in warm["sections"]
        assert "workload.disk_hit" in warm["sections"]

    def test_budget_holds_under_repeated_stores(self, cache_dir, monkeypatch):
        """Single-process view of the same invariant: every store sweeps,
        so the cache never ends a store above budget."""
        monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV, str(BUDGET_BYTES))
        rng = np.random.default_rng(7)
        for index in range(10):
            payload = rng.integers(0, 255, FILLER_BYTES, dtype=np.int64
                                   ).astype(np.uint8)
            diskcache.store("filler", f"wave-{index}", {"blob": payload})
            assert diskcache.cache_total_bytes() <= BUDGET_BYTES
