"""Crash-consistency of the on-disk artifact cache.

Injects the on-disk corruption modes of the fault plane
(:func:`repro.faults.plan.apply_cache_corruption`) between a store and
the next load, simulating a writer that died mid-write or a bundle that
rotted on disk:

* **torn write** — the process died after writing the temp file but
  before the atomic rename: the entry is simply absent (clean miss), the
  stray temp file never shadows it, and a recompute stores over it.
* **truncated bundle** — a half-written ``.npz`` fails verification on
  load, is evicted, and the caller recomputes.
* **garbage sibling** — the human-readable ``.json`` (the LRU atime
  carrier) is corrupted while a reader performs a verified hit; the
  embedded manifest is authoritative so the hit survives.

In every scenario, no stale pin may leak: :func:`pinned_entries` must be
empty once the access is over.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import diskcache
from repro.faults import CacheCorruption, apply_cache_corruption

KIND = "crash-consistency"


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    monkeypatch.delenv(diskcache.CACHE_MAX_BYTES_ENV, raising=False)
    return tmp_path


def arrays():
    return {"frames": np.arange(48, dtype=np.uint8).reshape(3, 4, 4),
            "costs": np.array([1.5, 2.5, 3.5])}


class TestTornWrite:
    def test_torn_write_is_a_clean_miss_then_recompute(self, cache_dir):
        key = diskcache.content_key("torn")
        spec = CacheCorruption(kind=KIND, key=key, mode="torn-write")
        torn_path = apply_cache_corruption(spec)
        assert os.path.exists(torn_path)

        with diskcache.pinned([(KIND, key)]):
            # The rename never happened: the entry is absent, the stray
            # temp file does not shadow it.
            assert diskcache.load(KIND, key) is None
            # The "recompute" stores normally and the next load hits.
            diskcache.store(KIND, key, arrays())
            loaded = diskcache.load(KIND, key)
        assert loaded is not None
        got, manifest = loaded
        assert np.array_equal(got["frames"], arrays()["frames"])
        assert manifest["key"] == key
        assert diskcache.pinned_entries() == set()

    def test_sweep_tolerates_the_stray_temp_file(self, cache_dir):
        key = diskcache.content_key("torn-sweep")
        apply_cache_corruption(
            CacheCorruption(kind=KIND, key=key, mode="torn-write"))
        diskcache.store(KIND, key, arrays())
        # A sweep over a directory holding a torn temp file must neither
        # crash nor evict the healthy entry next to it.
        result = diskcache.sweep(max_bytes=10 * 1024 * 1024)
        assert result.evicted == []
        assert diskcache.load(KIND, key) is not None


class TestTruncatedBundle:
    def test_truncated_bundle_degrades_to_recompute(self, cache_dir):
        key = diskcache.content_key("truncated")
        path = diskcache.store(KIND, key, arrays())
        whole = os.path.getsize(path)
        bundle = apply_cache_corruption(
            CacheCorruption(kind=KIND, key=key, mode="truncate-bundle"))
        assert os.path.getsize(bundle) < whole

        with diskcache.pinned([(KIND, key)]):
            # Verification fails -> miss; the bad entry is evicted so it
            # cannot poison later readers.
            assert diskcache.load(KIND, key) is None
            assert not os.path.exists(path)
            # Recompute restores a verified hit.
            diskcache.store(KIND, key, arrays())
            assert diskcache.load(KIND, key) is not None
        assert diskcache.pinned_entries() == set()


class TestGarbageSibling:
    def test_verified_hit_survives_corrupted_sibling(self, cache_dir):
        key = diskcache.content_key("sibling")
        path = diskcache.store(KIND, key, arrays())
        sibling = apply_cache_corruption(
            CacheCorruption(kind=KIND, key=key, mode="garbage-sibling"))
        with open(sibling, "r", encoding="utf-8") as handle:
            assert handle.read() == "{corrupt"

        with diskcache.pinned([(KIND, key)]):
            loaded = diskcache.load(KIND, key)
        # The embedded manifest is authoritative: the hit survives.
        assert loaded is not None
        got, manifest = loaded
        assert np.array_equal(got["costs"], arrays()["costs"])
        assert manifest["kind"] == KIND
        assert os.path.exists(path)
        assert diskcache.pinned_entries() == set()

    def test_missing_sibling_is_restored_on_hit(self, cache_dir):
        key = diskcache.content_key("sibling-missing")
        path = diskcache.store(KIND, key, arrays())
        sibling = path[:-len(".npz")] + ".json"
        os.unlink(sibling)
        assert diskcache.load(KIND, key) is not None
        # The hit rewrote the sibling from the embedded manifest, so the
        # entry regains its LRU access-time carrier.
        assert os.path.exists(sibling)


class TestCorruptionSpecPlumbing:
    def test_modes_are_validated(self):
        from repro.errors import FaultError
        with pytest.raises(FaultError):
            CacheCorruption(kind=KIND, key="k", mode="set-on-fire")
        with pytest.raises(FaultError):
            CacheCorruption(kind="", key="k")

    def test_corrupting_an_absent_bundle_raises(self, cache_dir):
        from repro.errors import FaultError
        with pytest.raises(FaultError):
            apply_cache_corruption(CacheCorruption(
                kind=KIND, key=diskcache.content_key("nope"),
                mode="truncate-bundle"))
