"""Tests for the Table I registry and dataset builders."""

import pytest

from repro.datasets import (ALL_DATASETS, LABELLED_DATASETS, TABLE_I, build_all,
                            build_dataset, build_split, get_dataset, labelled_datasets)
from repro.errors import DatasetError
from repro.video import RESOLUTION_1080P, RESOLUTION_400P


class TestRegistry:
    def test_table1_contents(self):
        assert len(TABLE_I) == 5
        assert set(LABELLED_DATASETS) == {"jackson_square", "coral_reef", "venice"}
        jackson = get_dataset("jackson_square")
        assert jackson.nominal_resolution == RESOLUTION_400P
        assert jackson.objects == ("car", "bus", "truck")
        assert jackson.has_labels
        venice = get_dataset("venice")
        assert venice.nominal_resolution == RESOLUTION_1080P
        assert venice.paper_duration_hours == 8.0
        assert not get_dataset("taipei").has_labels

    def test_paper_frame_counts(self):
        total = sum(spec.paper_num_frames for spec in TABLE_I.values())
        # The paper reports 2.16 million frames over 20 hours for the
        # end-to-end evaluation (4 hours per video); the 8-hour labelled
        # datasets add up on top of that.
        four_hour_total = sum(int(4 * 3600 * spec.fps) for spec in TABLE_I.values())
        assert four_hour_total == pytest.approx(2.16e6, rel=0.01)
        assert total > four_hour_total

    def test_helpers(self):
        assert [spec.name for spec in labelled_datasets()] == list(LABELLED_DATASETS)
        assert len(ALL_DATASETS) == 5
        with pytest.raises(DatasetError):
            get_dataset("missing")

    def test_size_scale(self):
        spec = get_dataset("venice")
        rendered = spec.nominal_resolution.scaled(0.1)
        assert spec.size_scale_to_nominal(rendered) == pytest.approx(
            spec.nominal_resolution.pixels / rendered.pixels)


class TestBuilders:
    def test_build_dataset_has_ground_truth_for_labelled(self):
        instance = build_dataset("jackson_square", duration_seconds=10,
                                 render_scale=0.05)
        assert instance.timeline is not None
        assert instance.timeline.num_frames == instance.video.metadata.num_frames
        assert instance.name == "jackson_square"
        observed = instance.timeline.object_labels
        assert observed <= set(instance.spec.objects)

    def test_train_test_split_differs(self):
        train, test = build_split("coral_reef", duration_seconds=10, render_scale=0.05)
        assert train.split == "train" and test.split == "test"
        assert train.profile.seed != test.profile.seed
        assert train.timeline != test.timeline

    def test_build_all(self):
        instances = build_all(["jackson_square", "venice"], duration_seconds=10,
                              render_scale=0.05)
        assert set(instances) == {"jackson_square", "venice"}
        with pytest.raises(DatasetError):
            build_all([])

    def test_reproducible_builds(self):
        a = build_dataset("venice", duration_seconds=10, render_scale=0.05)
        b = build_dataset("venice", duration_seconds=10, render_scale=0.05)
        assert a.timeline == b.timeline
