"""Tests for the on-disk artifact cache (``repro.datasets.diskcache``)."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.codec.gop import EncoderParameters
from repro.datasets import diskcache


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


class TestContentKey:
    def test_stable_across_calls(self):
        assert diskcache.content_key("a", 1, 2.5) == diskcache.content_key("a", 1, 2.5)

    def test_sensitive_to_every_part(self):
        base = diskcache.content_key("name", "test", 20.0, 0.08)
        assert diskcache.content_key("name2", "test", 20.0, 0.08) != base
        assert diskcache.content_key("name", "train", 20.0, 0.08) != base
        assert diskcache.content_key("name", "test", 21.0, 0.08) != base
        assert diskcache.content_key("name", "test", 20.0, 0.09) != base

    def test_dataclasses_keyed_by_fields(self):
        a = diskcache.content_key(EncoderParameters(gop_size=100))
        b = diskcache.content_key(EncoderParameters(gop_size=100))
        c = diskcache.content_key(EncoderParameters(gop_size=200))
        assert a == b
        assert a != c

    def test_version_bump_changes_keys(self, monkeypatch):
        before = diskcache.content_key("x")
        monkeypatch.setattr(diskcache, "CACHE_SCHEMA_VERSION",
                            diskcache.CACHE_SCHEMA_VERSION + 1)
        assert diskcache.content_key("x") != before

    def test_unkeyable_objects_are_rejected(self):
        """Objects without a stable canonical form must raise, not fall
        back to a memory-address repr that differs in every process."""
        class Opaque:
            pass
        with pytest.raises(TypeError):
            diskcache.content_key(Opaque())


class TestStoreLoad:
    def test_round_trip(self, cache_dir):
        arrays = {"frames": np.arange(24, dtype=np.uint8).reshape(2, 3, 4),
                  "costs": np.array([1.5, 2.5])}
        key = diskcache.content_key("round-trip")
        path = diskcache.store("unit", key, arrays, {"note": "hello"})
        assert os.path.exists(path)
        assert str(cache_dir) in path
        loaded = diskcache.load("unit", key)
        assert loaded is not None
        got_arrays, manifest = loaded
        assert np.array_equal(got_arrays["frames"], arrays["frames"])
        assert np.array_equal(got_arrays["costs"], arrays["costs"])
        assert manifest["note"] == "hello"
        assert manifest["kind"] == "unit"
        assert manifest["key"] == key

    def test_miss_on_absent_key(self, cache_dir):
        assert diskcache.load("unit", diskcache.content_key("nothing")) is None

    def test_sibling_json_manifest_written(self, cache_dir):
        key = diskcache.content_key("manifest")
        path = diskcache.store("unit", key, {"x": np.zeros(1)}, {"a": 1})
        sibling = path[:-len(".npz")] + ".json"
        with open(sibling, "r", encoding="utf-8") as handle:
            assert json.load(handle)["a"] == 1

    def test_reserved_member_rejected(self, cache_dir):
        with pytest.raises(ValueError):
            diskcache.store("unit", "k",
                            {diskcache.MANIFEST_MEMBER: np.zeros(1)})

    def test_corrupted_file_is_a_miss_and_evicted(self, cache_dir):
        key = diskcache.content_key("corrupt")
        path = diskcache.store("unit", key, {"x": np.arange(5)})
        with open(path, "wb") as handle:
            handle.write(b"this is not an npz archive")
        assert diskcache.load("unit", key) is None
        # The corrupt entry was deleted, so a re-store works cleanly.
        assert not os.path.exists(path)
        diskcache.store("unit", key, {"x": np.arange(5)})
        assert diskcache.load("unit", key) is not None

    def test_truncated_file_is_a_miss(self, cache_dir):
        key = diskcache.content_key("truncated")
        path = diskcache.store("unit", key, {"x": np.arange(1000)})
        with open(path, "rb") as handle:
            payload = handle.read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        assert diskcache.load("unit", key) is None

    def test_schema_version_bump_invalidates_old_entries(self, cache_dir,
                                                         monkeypatch):
        key = diskcache.content_key("versioned")
        diskcache.store("unit", key, {"x": np.arange(3)})
        assert diskcache.load("unit", key) is not None
        # Simulate a layout change: entries written under the old schema
        # must not be readable even when probed with their old key.
        monkeypatch.setattr(diskcache, "CACHE_SCHEMA_VERSION",
                            diskcache.CACHE_SCHEMA_VERSION + 1)
        assert diskcache.load("unit", key) is None

    def test_missing_sibling_json_is_still_a_hit(self, cache_dir):
        """Partial deletion, order 1: the sibling ``.json`` is lost.

        The authoritative manifest is embedded in the bundle, so the load
        must hit — and the sibling (the entry's LRU access-time carrier)
        must be restored from the embedded copy.
        """
        key = diskcache.content_key("lost-sibling")
        path = diskcache.store("unit", key, {"x": np.arange(7)}, {"a": 1})
        sibling = path[:-len(".npz")] + ".json"
        os.unlink(sibling)
        loaded = diskcache.load("unit", key)
        assert loaded is not None
        arrays, manifest = loaded
        assert np.array_equal(arrays["x"], np.arange(7))
        assert manifest["a"] == 1
        # The sibling was rewritten from the embedded manifest.
        assert os.path.exists(sibling)
        with open(sibling, "r", encoding="utf-8") as handle:
            assert json.load(handle)["a"] == 1

    def test_missing_npz_with_lingering_json_is_a_miss(self, cache_dir):
        """Partial deletion, order 2: the bundle is lost, the ``.json``
        lingers.  Must be a clean miss that also removes the orphan (it
        would otherwise sit in the cache directory forever)."""
        key = diskcache.content_key("lost-bundle")
        path = diskcache.store("unit", key, {"x": np.arange(7)})
        sibling = path[:-len(".npz")] + ".json"
        os.unlink(path)
        assert diskcache.load("unit", key) is None
        assert not os.path.exists(sibling)
        # A re-store after the cleanup works normally.
        diskcache.store("unit", key, {"x": np.arange(7)})
        assert diskcache.load("unit", key) is not None

    def test_wrong_kind_is_a_miss(self, cache_dir):
        key = diskcache.content_key("kinds")
        diskcache.store("kind-a", key, {"x": np.arange(3)})
        assert diskcache.load("kind-b", key) is None

    def test_list_and_clear(self, cache_dir):
        keys = [diskcache.content_key("entry", index) for index in range(3)]
        for key in keys:
            diskcache.store("unit", key, {"x": np.zeros(2)})
        assert sorted(diskcache.list_keys("unit")) == sorted(keys)
        assert diskcache.clear_cache("unit") == 3
        assert list(diskcache.list_keys("unit")) == []
        # Clearing an empty/absent cache is a no-op.
        assert diskcache.clear_cache() == 0


class TestCacheDirSelection:
    def test_env_var_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert diskcache.cache_dir() == str(tmp_path / "custom")

    def test_default_used_when_unset(self, monkeypatch):
        monkeypatch.delenv(diskcache.CACHE_DIR_ENV, raising=False)
        assert diskcache.cache_dir() == diskcache.default_cache_dir()
        assert diskcache.default_cache_dir().endswith("repro-sieve")


#: Script run by each racing writer process: stores a deterministic bundle
#: under the shared key, then loads it back and verifies the contents.
_RACER_SCRIPT = """
import sys

import numpy as np

sys.path.insert(0, {src!r})
from repro.datasets import diskcache

arrays = {{"payload": np.arange(10_000, dtype=np.int64)}}
for _ in range(20):
    diskcache.store("race", {key!r}, arrays, {{"writer": "racer"}})
    loaded = diskcache.load("race", {key!r})
    assert loaded is not None, "reader observed a broken entry"
    got, _ = loaded
    assert np.array_equal(got["payload"], arrays["payload"])
print("ok")
"""


class TestConcurrentWriters:
    def test_two_processes_racing_one_key(self, cache_dir):
        """Two writer/reader processes hammer the same key concurrently.

        The write-then-rename protocol means a reader can never observe a
        half-written bundle, whichever writer wins each round.
        """
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        key = diskcache.content_key("contended-entry")
        script = _RACER_SCRIPT.format(src=src, key=key)
        env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))
        racers = [subprocess.Popen([sys.executable, "-c", script], env=env,
                                   stdout=subprocess.PIPE,
                                   stderr=subprocess.PIPE)
                  for _ in range(2)]
        for racer in racers:
            stdout, stderr = racer.communicate(timeout=120)
            assert racer.returncode == 0, stderr.decode()
            assert stdout.decode().strip() == "ok"
        final = diskcache.load("race", key)
        assert final is not None
        arrays, manifest = final
        assert np.array_equal(arrays["payload"],
                              np.arange(10_000, dtype=np.int64))
        assert manifest["writer"] == "racer"
