"""LRU size budget of the on-disk cache (``REPRO_CACHE_MAX_BYTES``).

Contract: with a budget configured every store triggers a sweep that
evicts least-recently-*used* entries (access time carried by the sibling
``.json`` manifest, refreshed on every verified hit) until the cache fits,
never touching pinned entries of the active build.
"""

import os
import time

import numpy as np
import pytest

from repro.datasets import diskcache


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    monkeypatch.delenv(diskcache.CACHE_MAX_BYTES_ENV, raising=False)
    return tmp_path


def store_blob(key, size=80_000, kind="unit", seed=0):
    """Store ~``size`` bytes of incompressible payload under ``key``."""
    payload = np.random.default_rng(seed).integers(
        0, 255, size, dtype=np.int64).astype(np.uint8)
    return diskcache.store(kind, key, {"payload": payload})


def set_atime(kind, key, when):
    """Backdate an entry's LRU clock (sibling manifest mtime)."""
    path = diskcache.artifact_path(kind, key)
    os.utime(path[:-len(".npz")] + ".json", (when, when))


class TestBudgetParsing:
    def test_unset_means_unlimited(self, monkeypatch):
        monkeypatch.delenv(diskcache.CACHE_MAX_BYTES_ENV, raising=False)
        assert diskcache.cache_max_bytes() is None
        monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV, "")
        assert diskcache.cache_max_bytes() is None

    def test_zero_and_negative_mean_unlimited(self, monkeypatch):
        for raw in ("0", "-1"):
            monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV, raw)
            assert diskcache.cache_max_bytes() is None

    def test_byte_counts_parse(self, monkeypatch):
        monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV, "1048576")
        assert diskcache.cache_max_bytes() == 1048576
        monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV, "2.5e6")
        assert diskcache.cache_max_bytes() == 2_500_000

    def test_garbage_is_ignored_as_unlimited(self, monkeypatch):
        """The budget is first consulted mid-build (inside ``store``); a
        typo'd value must degrade to unlimited with a warning, never crash
        a run minutes into a render."""
        for raw in ("lots", "inf", "nan"):
            monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV, raw)
            assert diskcache.cache_max_bytes() is None


class TestSweep:
    def test_oldest_entries_evicted_first(self, cache_dir):
        now = time.time()
        for index in range(3):
            store_blob(f"k{index}", seed=index)
            set_atime("unit", f"k{index}", now - 100 + index)
        entries = {(e.kind, e.key): e for e in diskcache.scan_entries()}
        total = diskcache.cache_total_bytes()
        oldest_size = entries[("unit", "k0")].size_bytes
        result = diskcache.sweep(max_bytes=total - oldest_size)
        assert result.evicted == [("unit", "k0")]
        assert result.total_bytes_after <= total - oldest_size
        assert diskcache.load("unit", "k0") is None
        assert diskcache.load("unit", "k2") is not None

    def test_sweep_reports_sizes(self, cache_dir):
        store_blob("sized")
        result = diskcache.sweep(max_bytes=10**9)
        assert result.total_bytes_before == diskcache.cache_total_bytes()
        assert result.total_bytes_after == result.total_bytes_before
        assert result.evicted == []

    def test_within_budget_evicts_nothing(self, cache_dir):
        store_blob("keep-a", seed=1)
        store_blob("keep-b", seed=2)
        result = diskcache.sweep(max_bytes=diskcache.cache_total_bytes())
        assert result.evicted == []

    def test_no_budget_only_cleans_orphans(self, cache_dir):
        path = store_blob("orphaned")
        os.unlink(path)  # leave the sibling .json behind
        store_blob("survivor", seed=3)
        result = diskcache.sweep()
        assert result.orphans_removed == 1
        assert result.evicted == []
        assert diskcache.load("unit", "survivor") is not None

    def test_load_refreshes_lru_order(self, cache_dir):
        now = time.time()
        store_blob("stale", seed=1)
        store_blob("fresh", seed=2)
        set_atime("unit", "stale", now - 50)
        set_atime("unit", "fresh", now - 40)
        # Touch "stale" through a verified hit: it becomes the newest.
        assert diskcache.load("unit", "stale") is not None
        total = diskcache.cache_total_bytes()
        diskcache.sweep(max_bytes=total - 1)
        assert diskcache.load("unit", "stale") is not None
        assert diskcache.load("unit", "fresh") is None

    def test_missing_sibling_falls_back_to_bundle_mtime(self, cache_dir):
        now = time.time()
        old_path = store_blob("no-sibling", seed=1)
        os.unlink(old_path[:-len(".npz")] + ".json")
        os.utime(old_path, (now - 100, now - 100))
        store_blob("younger", seed=2)
        total = diskcache.cache_total_bytes()
        result = diskcache.sweep(max_bytes=total - 1)
        assert ("unit", "no-sibling") in result.evicted
        assert diskcache.load("unit", "younger") is not None

    def test_failed_evictions_are_reported_not_counted(self, cache_dir,
                                                       monkeypatch):
        """An entry the process cannot unlink must not be booked as
        evicted — the sweep keeps scanning and reports the failure instead
        of pretending the budget was met."""
        store_blob("stuck-a", seed=1)
        store_blob("stuck-b", seed=2)
        monkeypatch.setattr(diskcache, "evict", lambda *args, **kwargs: False)
        result = diskcache.sweep(max_bytes=1)
        assert result.evicted == []
        assert result.evict_failures == 2
        assert result.total_bytes_after == result.total_bytes_before

    def test_sweep_across_kinds(self, cache_dir):
        now = time.time()
        store_blob("entry", kind="kind-a", seed=1)
        store_blob("entry", kind="kind-b", seed=2)
        set_atime("kind-a", "entry", now - 100)
        set_atime("kind-b", "entry", now - 10)
        total = diskcache.cache_total_bytes()
        result = diskcache.sweep(max_bytes=total - 1)
        assert result.evicted == [("kind-a", "entry")]


class TestPinning:
    def test_pinned_entries_survive_any_budget(self, cache_dir):
        now = time.time()
        store_blob("pinned-entry", seed=1)
        store_blob("victim", seed=2)
        set_atime("unit", "pinned-entry", now - 100)  # oldest, prime victim
        with diskcache.pinned([("unit", "pinned-entry")]):
            result = diskcache.sweep(max_bytes=1)
        assert ("unit", "pinned-entry") not in result.evicted
        assert result.kept_pinned == 1
        assert diskcache.load("unit", "pinned-entry") is not None
        assert diskcache.load("unit", "victim") is None

    def test_pins_nest_and_unwind(self):
        entry = ("unit", "nested")
        with diskcache.pinned([entry]):
            with diskcache.pinned([entry]):
                assert entry in diskcache.pinned_entries()
            assert entry in diskcache.pinned_entries()
        assert entry not in diskcache.pinned_entries()

    def test_extra_pinned_argument(self, cache_dir):
        now = time.time()
        store_blob("inline-pin", seed=1)
        set_atime("unit", "inline-pin", now - 100)
        result = diskcache.sweep(max_bytes=1,
                                 extra_pinned=[("unit", "inline-pin")])
        assert ("unit", "inline-pin") not in result.evicted


class TestAutoSweepOnStore:
    def test_store_enforces_the_env_budget(self, cache_dir, monkeypatch):
        store_blob("first", seed=1)
        per_entry = diskcache.cache_total_bytes()
        monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV,
                           str(int(per_entry * 1.5)))
        time.sleep(0.02)  # distinct mtimes on coarse filesystems
        store_blob("second", seed=2)
        # Budget fits ~1.5 entries: the sweep triggered by the second store
        # evicts the first and keeps the (pinned) entry just written.
        assert diskcache.cache_total_bytes() <= int(per_entry * 1.5)
        assert diskcache.load("unit", "second") is not None
        assert diskcache.load("unit", "first") is None

    def test_no_budget_no_sweep(self, cache_dir):
        for index in range(4):
            store_blob(f"grow-{index}", seed=index)
        assert len(list(diskcache.list_keys("unit"))) == 4
