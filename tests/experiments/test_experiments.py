"""Tests for the experiment harnesses (quick configurations)."""

import pytest

from repro.core import ALL_DEPLOYMENT_MODES, DeploymentMode
from repro.experiments import (ExperimentConfig, figure3, figure4, figure5, table1,
                               table2, table3, format_table, prepare_dataset)


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig.quick(datasets=("jackson_square",))


@pytest.fixture(scope="module")
def quick_prepared(quick_config):
    return {"jackson_square": prepare_dataset("jackson_square", quick_config)}


class TestCommon:
    def test_quick_config(self, quick_config):
        assert quick_config.duration_seconds < ExperimentConfig().duration_seconds
        assert quick_config.datasets == ("jackson_square",)

    def test_format_table(self):
        text = format_table([{"a": 1.23456, "b": "x"}], ["a", "b"], title="T")
        assert text.startswith("T")
        assert "1.235" in text and "x" in text

    def test_prepare_dataset_caches_analysis(self, quick_prepared):
        prepared = quick_prepared["jackson_square"]
        assert len(prepared.activities) == prepared.video.metadata.num_frames
        assert prepared.timeline is not None


class TestTable1:
    def test_rows_match_registry(self):
        rows = table1.run()
        assert len(rows) == 5
        assert {row["dataset"] for row in rows} == {
            "jackson_square", "coral_reef", "venice", "taipei", "amsterdam"}
        assert "Table I" in table1.render(rows)

    def test_verified_rows(self, quick_config):
        rows = table1.run(quick_config, verify_synthetic=True)
        jackson = next(row for row in rows if row["dataset"] == "jackson_square")
        assert jackson["synthetic_events"] >= 1


class TestFigure3:
    def test_points_and_summary(self, quick_config, quick_prepared):
        points = figure3.run(quick_config, include_sift=False, prepared=quick_prepared)
        methods = {point.method for point in points}
        assert methods == {"sieve", "mse"}
        assert all(0.0 <= point.accuracy <= 1.0 for point in points)
        assert all(0.0 < point.sampling_fraction <= 1.0 for point in points)
        summary = figure3.summarize(points)
        assert "jackson_square" in summary
        assert set(summary["jackson_square"]) == methods
        text = figure3.render(points)
        assert "Figure 3" in text


class TestTable2:
    def test_semantic_beats_default_f1(self, quick_config):
        rows = table2.run(quick_config)
        assert len(rows) == 1
        row = rows[0]
        assert row.semantic_f1 >= row.default_f1
        assert row.semantic_accuracy >= row.default_accuracy
        assert 0 < row.semantic_sampling < 0.5
        assert "Table II" in table2.render(rows)


class TestTable3:
    def test_simulated_speeds_match_paper_shape(self):
        rows = table3.run(ExperimentConfig(datasets=("jackson_square", "coral_reef",
                                                     "venice")))
        by_name = {row.dataset: row for row in rows}
        # SiEVE is two orders of magnitude faster than the decode-based filters.
        for row in rows:
            assert row.sieve_speedup_vs_mse > 50
            assert row.sieve_speedup_vs_sift > 80
        # Lower resolution -> higher fps, as in Table III.
        assert by_name["jackson_square"].sieve_fps > by_name["coral_reef"].sieve_fps
        assert by_name["coral_reef"].sieve_fps > by_name["venice"].sieve_fps
        assert "Table III" in table3.render(rows)


class TestFigures4And5:
    @pytest.fixture(scope="class")
    def workloads(self):
        config = ExperimentConfig.quick()
        return figure4.build_workloads(config,
                                       dataset_names=("jackson_square", "coral_reef"))

    def test_figure4_counts_and_values(self, workloads):
        results = figure4.run(workloads=workloads, video_counts=(1, 2),
                              modes=(DeploymentMode.IFRAME_EDGE_CLOUD_NN,
                                     DeploymentMode.MSE_EDGE_CLOUD_NN))
        assert set(results) == {DeploymentMode.IFRAME_EDGE_CLOUD_NN,
                                DeploymentMode.MSE_EDGE_CLOUD_NN}
        three_tier = results[DeploymentMode.IFRAME_EDGE_CLOUD_NN]
        assert three_tier[2].total_frames > three_tier[1].total_frames
        assert three_tier[2].throughput_fps > \
            results[DeploymentMode.MSE_EDGE_CLOUD_NN][2].throughput_fps
        rows = figure4.as_rows(results)
        assert len(rows) == 4
        assert "Figure 4" in figure4.render(results)

    def test_figure5_ratios(self, workloads):
        results = figure5.run(workloads=workloads, modes=ALL_DEPLOYMENT_MODES)
        ratios = figure5.headline_ratios(results)
        assert ratios["full_video_over_iframes"] > 2.0
        assert ratios["mse_over_iframes"] > 1.0
        assert ratios["semantic_over_default_camera_edge"] > 1.0
        assert "Figure 5" in figure5.render(results)
