"""Two-level dataset/workload cache: warm sessions skip every render.

Acceptance contract: a second Python session pointed at a warm
``REPRO_CACHE_DIR`` rebuilds its prepared datasets and workloads entirely
from disk — asserted through the :mod:`repro.perf` stage sections
(``dataset.render`` must not fire on the warm pass) — and produces
identical values.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.datasets import diskcache
from repro.experiments import ExperimentConfig, prepare_dataset, prepare_workload
from repro.experiments.common import (DATASET_CACHE_KIND, WORKLOAD_CACHE_KIND,
                                      clear_prepared_cache)
from repro.perf import get_recorder

QUICK = ExperimentConfig(duration_seconds=8.0, render_scale=0.06,
                         datasets=("jackson_square",))


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(diskcache.CACHE_DIR_ENV, str(tmp_path))
    clear_prepared_cache()
    get_recorder().reset()
    yield tmp_path
    clear_prepared_cache()
    get_recorder().reset()


def workload_fingerprint(workload):
    return (workload.name, workload.num_frames, workload.semantic_bytes,
            workload.default_bytes, workload.semantic_iframe_bytes,
            list(workload.semantic_samples), list(workload.mse_samples),
            list(workload.uniform_samples), workload.resized_frame_bytes)


class TestPreparedDatasetDiskCache:
    def test_disk_hit_reproduces_the_cold_result(self, cache_dir):
        cold = prepare_dataset("jackson_square", QUICK)
        sections = get_recorder().sections
        assert "dataset.render" in sections
        assert "dataset.disk_hit" not in sections

        # A fresh "session": the in-process layer is empty, the disk warm.
        clear_prepared_cache()
        get_recorder().reset()
        warm = prepare_dataset("jackson_square", QUICK)
        sections = get_recorder().sections
        assert "dataset.render" not in sections
        assert "dataset.disk_hit" in sections
        assert np.array_equal(np.stack(cold.instance.video.as_arrays()),
                              np.stack(warm.instance.video.as_arrays()))
        assert cold.activities == warm.activities
        assert cold.timeline == warm.timeline
        assert cold.instance.video.metadata == warm.instance.video.metadata
        assert cold.instance.profile == warm.instance.profile

    def test_corrupted_dataset_artifact_falls_back_to_render(self, cache_dir):
        prepare_dataset("jackson_square", QUICK)
        for key in diskcache.list_keys(DATASET_CACHE_KIND):
            with open(diskcache.artifact_path(DATASET_CACHE_KIND, key),
                      "wb") as handle:
                handle.write(b"garbage")
        clear_prepared_cache()
        get_recorder().reset()
        prepared = prepare_dataset("jackson_square", QUICK)
        assert "dataset.render" in get_recorder().sections
        assert prepared.timeline is not None

    def test_cache_disabled_writes_nothing(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", "0")
        prepare_dataset("jackson_square", QUICK)
        prepare_workload("jackson_square", QUICK)
        assert list(diskcache.list_keys(DATASET_CACHE_KIND)) == []
        assert list(diskcache.list_keys(WORKLOAD_CACHE_KIND)) == []


class TestWorkloadDiskCache:
    def test_warm_hit_skips_build_and_matches(self, cache_dir):
        cold = prepare_workload("jackson_square", QUICK)
        assert "workload.build" in get_recorder().sections

        clear_prepared_cache()
        get_recorder().reset()
        warm = prepare_workload("jackson_square", QUICK)
        sections = get_recorder().sections
        assert "workload.disk_hit" in sections
        # The warm hit touches neither the footage nor the tuner/encoder.
        for absent in ("dataset.render", "dataset.analyze", "workload.build",
                       "pipeline.tune", "pipeline.encode"):
            assert absent not in sections, absent
        assert workload_fingerprint(cold) == workload_fingerprint(warm)
        assert cold.timeline == warm.timeline
        assert cold.nominal_resolution == warm.nominal_resolution

    def test_in_process_layer_serves_repeat_calls(self, cache_dir):
        first = prepare_workload("jackson_square", QUICK)
        assert prepare_workload("jackson_square", QUICK) is first

    def test_key_covers_experiment_scale(self, cache_dir):
        prepare_workload("jackson_square", QUICK)
        bigger = ExperimentConfig(duration_seconds=10.0, render_scale=0.06,
                                  datasets=("jackson_square",))
        clear_prepared_cache()
        get_recorder().reset()
        prepare_workload("jackson_square", bigger)
        # Different scale -> different key -> a real rebuild.
        assert "workload.build" in get_recorder().sections
        assert len(list(diskcache.list_keys(WORKLOAD_CACHE_KIND))) == 2


#: One self-contained "pytest session": prepares the Figure 4 workload of
#: a quick config and dumps the perf stage sections plus a result
#: fingerprint as JSON on stdout.
_SESSION_SCRIPT = """
import json
import sys

sys.path.insert(0, {src!r})
from repro.experiments import ExperimentConfig, prepare_workload
from repro.perf import get_recorder

config = ExperimentConfig(duration_seconds=8.0, render_scale=0.06,
                          datasets=("jackson_square",))
workload = prepare_workload("jackson_square", config)
summary = get_recorder().summary()
print(json.dumps({{
    "sections": sorted(summary),
    "stage_seconds": {{name: stats["total_seconds"]
                       for name, stats in summary.items()}},
    "fingerprint": [workload.name, workload.num_frames,
                    workload.semantic_bytes, workload.default_bytes,
                    list(workload.semantic_samples),
                    list(workload.mse_samples),
                    list(workload.uniform_samples)],
}}))
"""


#: One self-contained session running Figure 3 and Tables I-III at a tiny
#: scale; dumps the perf stage sections (call counts) plus a value
#: fingerprint as JSON on stdout.  Wall-clock-dependent values (Table III's
#: measured fps) are deliberately excluded from the fingerprint.
_FIGURES_TABLES_SCRIPT = """
import json
import sys

sys.path.insert(0, {src!r})
from repro.codec.gop import EncoderParameters
from repro.experiments import (ExperimentConfig, figure3, table1, table2,
                               table3)
from repro.perf import get_recorder

config = ExperimentConfig(duration_seconds=5.0, render_scale=0.05,
                          datasets=("jackson_square",))
points = figure3.run(
    config, sieve_sweep=[EncoderParameters(gop_size=100,
                                           scenecut_threshold=0.0)],
    include_sift=False)
table1_rows = table1.run(config, verify_synthetic=True)
table2_rows = table2.run(config)
table3_rows = table3.run(config, measure_wallclock=True)
summary = get_recorder().summary()
print(json.dumps({{
    "sections": {{name: stats["calls"] for name, stats in summary.items()}},
    "fingerprint": {{
        "figure3": [[p.dataset, p.method, p.sampling_fraction, p.accuracy]
                    for p in points],
        "table1": [[row["dataset"], row["synthetic_labels"],
                    row["synthetic_events"]] for row in table1_rows],
        "table2": [[row.dataset, row.semantic_parameters.describe(),
                    row.semantic_accuracy, row.semantic_sampling,
                    row.default_accuracy] for row in table2_rows],
        "table3": [[row.dataset, row.sieve_fps, row.mse_fps, row.sift_fps]
                   for row in table3_rows],
    }},
}}))
"""


class TestFiguresAndTablesSecondSessionWarm:
    def test_figure3_and_tables_are_cache_pinned(self, cache_dir):
        """Figure 3 and Tables I-III all route their footage through
        ``prepare_dataset``/``prepare_workload`` now: a second interpreter
        session with a warm ``REPRO_CACHE_DIR`` must reproduce every value
        without rendering, analyzing, tuning or building anything."""
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        script = _FIGURES_TABLES_SCRIPT.format(src=src)
        env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))

        def run_session():
            result = subprocess.run([sys.executable, "-c", script], env=env,
                                    capture_output=True, text=True,
                                    timeout=600)
            assert result.returncode == 0, result.stderr
            return json.loads(result.stdout)

        first = run_session()
        # The cold session rendered at least figure3/table2/table3's
        # jackson_square splits (test + train) and Table I's full-split
        # corpus, sharing every overlapping (name, split) preparation.
        assert first["sections"].get("dataset.render", 0) >= 3

        second = run_session()
        for heavy_stage in ("dataset.render", "dataset.analyze",
                            "workload.build", "pipeline.tune",
                            "pipeline.encode", "pipeline.mse_baseline"):
            assert heavy_stage not in second["sections"], heavy_stage
        assert second["sections"].get("dataset.disk_hit", 0) >= 3
        assert second["fingerprint"] == first["fingerprint"]


class TestSecondSessionIsWarm:
    def test_second_python_session_skips_all_renders(self, cache_dir):
        """Two real interpreter sessions sharing one ``REPRO_CACHE_DIR``:
        the second must not render, analyze, tune or encode anything."""
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        script = _SESSION_SCRIPT.format(src=src)
        env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir))

        def run_session():
            result = subprocess.run([sys.executable, "-c", script], env=env,
                                    capture_output=True, text=True,
                                    timeout=300)
            assert result.returncode == 0, result.stderr
            return json.loads(result.stdout)

        first = run_session()
        assert "dataset.render" in first["sections"]
        second = run_session()
        for heavy_stage in ("dataset.render", "dataset.analyze",
                            "workload.build", "pipeline.tune",
                            "pipeline.encode", "pipeline.mse_baseline"):
            assert heavy_stage not in second["sections"], heavy_stage
        assert "workload.disk_hit" in second["sections"]
        assert second["fingerprint"] == first["fingerprint"]
        # The warm session's cache path is much cheaper than the cold
        # stages it replaced (conservative factor; typically ~100x).
        cold_seconds = sum(first["stage_seconds"].values())
        warm_seconds = sum(second["stage_seconds"].values())
        assert warm_seconds < cold_seconds
