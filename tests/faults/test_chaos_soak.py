"""The chaos soak: a composed fault storm with full recovery accounting.

One run layers every scheduler-injected fault class the plane supports —
two edge crashes (one permanent, one transient), a WAN partition window,
and a camera stream stall long enough to trip the watchdog — over a
multi-camera streaming workload, and requires:

* **no lost chunks** — every accepted chunk is completed or failed out
  with a reason; nothing is silently dropped and the drain terminates;
* **well-formed reports** — fault counters match the injected plan and
  failed-over sessions are accounted at their final edge;
* **determinism** — the same plan produces the identical recovery trace
  on a re-run and under the real-time clock driver (virtual ≡ real-time
  parity extends to the fault path).

``examples/chaos_soak.py`` replays the same storm from the command line;
CI runs it twice and diffs the printed traces verbatim.
"""

from __future__ import annotations

from repro.faults import (EdgeCrash, FaultPlan, ResilienceConfig, StreamStall,
                          WanDegradation)
from repro.service import (ChunkFeeder, FrameChunk, RealTimeClock,
                           SessionState, StreamingService, TenantPolicy,
                           VirtualClock)

TOLERANCE = 1e-6

#: The composed storm: both crash flavours, a partition, a long stall.
STORM = (
    EdgeCrash(edge_index=0, at_seconds=1.3),
    EdgeCrash(edge_index=1, at_seconds=2.1, restart_after_seconds=0.7),
    WanDegradation(edge_index=2, at_seconds=0.8, duration_seconds=1.0),
    StreamStall(camera="cam-02", at_seconds=0.5, duration_seconds=3.0),
)


def make_chunks(count: int) -> list:
    return [FrameChunk(num_frames=30, frames_for_inference=3,
                       edge_seconds=0.35, cloud_seconds=0.12,
                       camera_edge_bytes=700_000, edge_cloud_bytes=90_000)
            for _ in range(count)]


def run_soak(clock, specs=STORM, num_cameras: int = 6):
    service = StreamingService(
        num_edge_servers=3, clock=clock, faults=FaultPlan(specs=specs),
        resilience=ResilienceConfig(stall_timeout_seconds=1.0,
                                    watchdog_period_seconds=0.25,
                                    breaker_cooldown_seconds=1.0),
        tenants=(TenantPolicy(name="cams", max_sessions=32,
                              max_pending_chunks=2),))
    feeders = []
    for index in range(num_cameras):
        camera = f"cam-{index:02d}"
        service.open_session(camera, tenant="cams")
        feeders.append(ChunkFeeder(service, camera, make_chunks(6),
                                   period_seconds=0.5).start(at=0.1 * index))
    service.drain()
    return service, feeders


class TestChaosSoak:
    def test_soak_recovers_with_zero_lost_chunks(self):
        service, feeders = run_soak(VirtualClock())
        stats = service.fault_stats()
        assert stats is not None
        # The storm's full fault census landed.
        assert stats.crashes_seen == 2
        assert stats.edges_restarted == 1
        assert stats.wan_partitions == 1
        assert stats.stream_stalls == 1
        assert stats.sessions_relocated >= 1
        assert stats.sessions_stalled >= 1
        # The crashes caught work mid-stage and it was requeued, not lost.
        assert stats.chunks_failed_over > 0
        assert stats.chunks_dropped == 0
        # No lost chunks: every accepted chunk is accounted for and the
        # drain terminated (we are here).
        for session in service.ingest.sessions.values():
            assert session.state is SessionState.CLOSED
            assert session.in_flight == 0
            assert (session.chunks_pushed
                    == session.chunks_completed + session.chunks_failed)
            assert session.chunks_failed == 0
        # Failed-over sessions are accounted at their final edge: nothing
        # still maps to the permanently dead edge 0 unless it finished
        # before the crash.
        report = service.fleet_report()
        for session in service.ingest.sessions.values():
            if session.edge_index == 0:
                assert session.last_completion <= 1.3 + TOLERANCE
            assert report.assignments[session.camera] == session.edge_index
        # The stalled camera was reaped with a reason, and its feeder
        # noticed instead of erroring the loop.
        stalled = service.ingest.sessions["cam-02"]
        assert stalled.close_reason == "stalled"
        assert any(feeder.halted for feeder in feeders)

    def test_virtual_and_real_time_runs_are_identical(self):
        baseline, _ = run_soak(VirtualClock())
        live, _ = run_soak(RealTimeClock(speedup=1e6))
        assert baseline.recovery_trace.mismatches(live.recovery_trace) == []
        assert baseline.fleet_report().parity_mismatches(
            live.fleet_report(), TOLERANCE) == []
        assert baseline.fault_stats().mismatches(live.fault_stats()) == []
        assert (baseline.scheduler.events_processed
                == live.scheduler.events_processed)

    def test_same_plan_rerun_is_identical(self):
        first, _ = run_soak(VirtualClock())
        second, _ = run_soak(VirtualClock())
        assert first.recovery_trace.mismatches(second.recovery_trace) == []
        assert first.recovery_trace.lines() == second.recovery_trace.lines()
        assert first.fleet_report().parity_mismatches(
            second.fleet_report(), TOLERANCE) == []

    def test_seeded_storm_is_reproducible(self):
        cameras = tuple(f"cam-{index:02d}" for index in range(6))
        plan = FaultPlan.seeded(29, num_edge_servers=3, cameras=cameras,
                                horizon_seconds=3.5)
        first, _ = run_soak(VirtualClock(), specs=plan.specs)
        second, _ = run_soak(VirtualClock(), specs=plan.specs)
        assert first.recovery_trace.mismatches(second.recovery_trace) == []
        stats = first.fault_stats()
        assert stats is not None and stats.crashes_seen == 2
        for session in first.ingest.sessions.values():
            assert session.in_flight == 0
