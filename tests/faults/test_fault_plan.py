"""Unit tests for the fault-plane primitives.

Covers the plain-data layer underneath the injection drivers: fault
specs and :class:`FaultPlan` (validation, seeded draws, composition),
the shared :class:`RetryPolicy`, the per-edge :class:`CircuitBreaker`
state machine, and the :class:`FaultStats` / :class:`RecoveryTrace`
accounting the chaos-soak contract diffs.
"""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults import (BreakerState, CircuitBreaker, EdgeCrash, FaultPlan,
                          FaultStats, RecoveryTrace, RetryPolicy, StreamStall,
                          WanDegradation, WorkerKill)


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(max_attempts=8, base_delay_seconds=0.1,
                             multiplier=2.0, max_delay_seconds=0.5)
        assert policy.delay_seconds(1) == pytest.approx(0.1)
        assert policy.delay_seconds(2) == pytest.approx(0.2)
        assert policy.delay_seconds(3) == pytest.approx(0.4)
        # The ceiling clamps every later attempt.
        assert policy.delay_seconds(4) == pytest.approx(0.5)
        assert policy.delay_seconds(20) == pytest.approx(0.5)

    def test_constant_policy_is_flat(self):
        policy = RetryPolicy.constant(0.25, max_attempts=4)
        assert [policy.delay_seconds(n) for n in range(1, 5)] == [0.25] * 4
        assert not policy.exhausted(3)
        assert policy.exhausted(4)
        assert policy.exhausted(5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_seconds=1.0, multiplier=1.0,
                             max_delay_seconds=1.0, jitter_fraction=0.5,
                             seed=11)
        delays = [policy.delay_seconds(n, key="cam-3") for n in range(1, 9)]
        again = [policy.delay_seconds(n, key="cam-3") for n in range(1, 9)]
        assert delays == again  # same (seed, key, attempt) -> same jitter
        assert all(0.5 <= delay <= 1.5 for delay in delays)
        # Different keys draw different jitter (the retries decorrelate).
        other = [policy.delay_seconds(n, key="cam-4") for n in range(1, 9)]
        assert other != delays

    def test_no_jitter_means_no_rng(self):
        policy = RetryPolicy(base_delay_seconds=0.5, multiplier=1.0,
                             max_delay_seconds=0.5)
        assert policy.delay_seconds(3, key="anything") == 0.5

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_seconds": 0.0},
        {"multiplier": 0.5},
        {"max_delay_seconds": 0.01, "base_delay_seconds": 0.05},
        {"jitter_fraction": 1.0},
        {"jitter_fraction": -0.1},
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(FaultError):
            RetryPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        with pytest.raises(FaultError):
            RetryPolicy().delay_seconds(0)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker("edge:0", failure_threshold=3,
                                 cooldown_seconds=5.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(3.5)

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(1.0)
        breaker.record_success(1.5)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=2.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(1.9)          # still cooling down
        assert breaker.allow(2.5)              # the probe slot
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(2.6)          # probe already in flight
        breaker.record_success(3.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(3.1)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=1.0)
        breaker.trip(0.0)
        assert breaker.allow(1.5)
        breaker.record_failure(1.6)  # the probe failed
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 1.6
        assert breaker.opens == 2

    def test_retrip_restarts_cooldown_without_recounting(self):
        opened = []
        breaker = CircuitBreaker(cooldown_seconds=1.0,
                                 on_open=lambda: opened.append(True))
        breaker.trip(0.0)
        breaker.trip(0.5)
        assert breaker.opens == 1
        assert len(opened) == 1
        assert breaker.opened_at == 0.5
        assert not breaker.allow(1.2)  # cooldown restarted at 0.5

    def test_invalid_configs_rejected(self):
        with pytest.raises(FaultError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(FaultError):
            CircuitBreaker(cooldown_seconds=0.0)


class TestFaultSpecs:
    def test_spec_validation(self):
        with pytest.raises(FaultError):
            EdgeCrash(edge_index=-1, at_seconds=1.0)
        with pytest.raises(FaultError):
            EdgeCrash(edge_index=0, at_seconds=1.0,
                      restart_after_seconds=0.0)
        with pytest.raises(FaultError):
            WanDegradation(edge_index=0, at_seconds=1.0,
                           duration_seconds=1.0, bandwidth_factor=1.0)
        with pytest.raises(FaultError):
            StreamStall(camera="", at_seconds=1.0, duration_seconds=1.0)
        with pytest.raises(FaultError):
            WorkerKill(edge_index=-2)

    def test_permanence_and_partition_flags(self):
        assert EdgeCrash(edge_index=0, at_seconds=1.0).permanent
        assert not EdgeCrash(edge_index=0, at_seconds=1.0,
                             restart_after_seconds=2.0).permanent
        assert WanDegradation(edge_index=0, at_seconds=1.0,
                              duration_seconds=1.0).partition
        assert not WanDegradation(edge_index=0, at_seconds=1.0,
                                  duration_seconds=1.0,
                                  bandwidth_factor=0.25).partition


class TestFaultPlan:
    def test_properties_are_time_ordered(self):
        plan = FaultPlan(specs=(
            EdgeCrash(edge_index=1, at_seconds=5.0),
            WanDegradation(edge_index=0, at_seconds=3.0,
                           duration_seconds=1.0),
            EdgeCrash(edge_index=0, at_seconds=1.0,
                      restart_after_seconds=0.5),
            WorkerKill(edge_index=1),
        ))
        assert [crash.at_seconds for crash in plan.edge_crashes] == [1.0, 5.0]
        assert plan.worker_kills == (WorkerKill(edge_index=1),)
        assert plan.has_scheduler_faults

    def test_worker_kill_only_plans_leave_the_simulation_alone(self):
        plan = FaultPlan(specs=(WorkerKill(edge_index=0),))
        assert not plan.has_scheduler_faults
        assert FaultPlan().has_scheduler_faults is False

    def test_validate_for_rejects_out_of_range_targets(self):
        plan = FaultPlan(specs=(EdgeCrash(edge_index=4, at_seconds=1.0),))
        with pytest.raises(FaultError):
            plan.validate_for(2)
        plan.validate_for(5)

    def test_validate_for_requires_a_survivor(self):
        doomed = FaultPlan(specs=(
            EdgeCrash(edge_index=0, at_seconds=1.0),
            EdgeCrash(edge_index=1, at_seconds=2.0),
        ))
        with pytest.raises(FaultError):
            doomed.validate_for(2)
        doomed.validate_for(3)  # one survivor is enough

    def test_unknown_specs_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan(specs=("not a spec",))  # type: ignore[arg-type]

    def test_seeded_plans_are_reproducible(self):
        kwargs = dict(num_edge_servers=4, cameras=("cam-a", "cam-b"),
                      horizon_seconds=12.0)
        assert (FaultPlan.seeded(7, **kwargs)
                == FaultPlan.seeded(7, **kwargs))
        assert (FaultPlan.seeded(7, **kwargs)
                != FaultPlan.seeded(8, **kwargs))

    def test_seeded_plan_shape(self):
        plan = FaultPlan.seeded(3, num_edge_servers=4,
                                cameras=("cam-a", "cam-b"),
                                horizon_seconds=10.0)
        crashes = plan.edge_crashes
        assert len(crashes) == 2
        # Crash targets are distinct edges; permanence alternates.
        assert len({crash.edge_index for crash in crashes}) == 2
        assert sorted(crash.permanent for crash in crashes) == [False, True]
        assert len(plan.wan_degradations) == 1
        assert len(plan.stream_stalls) == 1
        assert plan.stream_stalls[0].camera in ("cam-a", "cam-b")
        assert len(plan.worker_kills) == 1
        for spec in plan.specs:
            at = getattr(spec, "at_seconds", 0.0)
            assert 0.0 <= at <= 10.0

    def test_seeded_needs_a_surviving_edge(self):
        with pytest.raises(FaultError):
            FaultPlan.seeded(1, num_edge_servers=2, num_edge_crashes=2)


class TestFaultStats:
    def test_has_activity(self):
        stats = FaultStats()
        assert not stats.has_activity()
        stats.crashes_seen = 1
        assert stats.has_activity()
        histogram_only = FaultStats()
        histogram_only.observe_attempts(3)
        assert histogram_only.has_activity()

    def test_as_dict_flattens_the_histogram(self):
        stats = FaultStats(breaker_opens=2)
        stats.observe_attempts(1, count=4)
        stats.observe_attempts(5)
        flat = stats.as_dict()
        assert flat["breaker_opens"] == 2
        assert flat["retry_attempts_1"] == 4
        assert flat["retry_attempts_5"] == 1

    def test_mismatches_are_symmetric_on_keys(self):
        a = FaultStats(crashes_seen=2)
        b = FaultStats()
        b.observe_attempts(2)
        problems = a.mismatches(b)
        assert "faults.crashes_seen: 2 != 0" in problems
        assert "faults.retry_attempts_2: 0 != 1" in problems
        assert a.mismatches(FaultStats(crashes_seen=2)) == []


class TestRecoveryTrace:
    def test_lines_are_stable(self):
        trace = RecoveryTrace()
        trace.record(1.25, "edge-crash", "edge=1 permanent")
        trace.record(2.0, "tick")
        assert trace.lines() == ["t=1.250000 edge-crash edge=1 permanent",
                                 "t=2.000000 tick"]
        assert trace.kinds() == {"edge-crash": 1, "tick": 1}
        assert len(trace) == 2

    def test_mismatches(self):
        a, b = RecoveryTrace(), RecoveryTrace()
        a.record(1.0, "edge-crash", "edge=0")
        b.record(1.0, "edge-crash", "edge=1")
        b.record(2.0, "edge-restart", "edge=1")
        problems = a.mismatches(b)
        assert any("length" in problem for problem in problems)
        assert any("trace[0]" in problem for problem in problems)
        assert a.mismatches(a) == []
