"""Fault injection and recovery in the batch fleet orchestrator.

The batch side of the fault plane: edge crashes (transient and
permanent) injected into ``FleetOrchestrator`` runs, deterministic
failover of unfinished jobs, the forced single-process path for plans
that need cross-edge failover, and the pool-worker-kill recovery in the
multiprocess runner (the parent re-executes only the lost shard inline,
bit-identically).
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.fleet import CameraJob, FleetOrchestrator
from repro.errors import FaultError
from repro.faults import EdgeCrash, FaultPlan, WanDegradation, WorkerKill

TOLERANCE = 1e-6


def make_jobs(count: int = 12):
    return [CameraJob(camera=f"cam{index}", video=f"vid{index}",
                      num_frames=120 + 10 * index,
                      frames_for_inference=12 + index,
                      edge_seconds=0.4 + 0.03 * index,
                      cloud_seconds=0.2 + 0.02 * index,
                      camera_edge_bytes=900_000 + 1000 * index,
                      edge_cloud_bytes=120_000 + 500 * index)
            for index in range(count)]


class TestCrashFailover:
    def test_permanent_crash_relocates_unfinished_jobs(self):
        plan = FaultPlan(specs=(EdgeCrash(edge_index=0, at_seconds=1.5),))
        report = FleetOrchestrator(make_jobs(), num_edge_servers=3,
                                   faults=plan).run()
        assert report.faults is not None
        assert report.faults.crashes_seen == 1
        assert report.faults.jobs_failed_over > 0
        assert report.faults.chunks_dropped == 0
        # Every job still finished, none on the dead edge after failover.
        for outcome in report.outcomes:
            assert not math.isnan(outcome.end_seconds)
        failed_over = [camera for camera, edge
                       in report.assignments.items() if edge == 0]
        # Only jobs that fully completed before the crash may remain
        # attributed to edge 0.
        for outcome in report.outcomes:
            if outcome.job.camera in failed_over:
                assert outcome.end_seconds <= 1.5 + TOLERANCE

    def test_transient_crash_requeues_in_place(self):
        plan = FaultPlan(specs=(
            EdgeCrash(edge_index=0, at_seconds=1.0,
                      restart_after_seconds=0.8),))
        report = FleetOrchestrator(make_jobs(), num_edge_servers=2,
                                   faults=plan).run()
        assert report.faults is not None
        assert report.faults.crashes_seen == 1
        assert report.faults.edges_restarted == 1
        assert report.faults.jobs_failed_over == 0
        assert report.faults.chunks_failed_over > 0
        for outcome in report.outcomes:
            assert not math.isnan(outcome.end_seconds)

    def test_same_plan_is_deterministic(self):
        def run():
            plan = FaultPlan(specs=(
                EdgeCrash(edge_index=1, at_seconds=1.2),
                EdgeCrash(edge_index=0, at_seconds=2.0,
                          restart_after_seconds=0.5),
                WanDegradation(edge_index=2, at_seconds=0.8,
                               duration_seconds=1.0),
            ))
            return FleetOrchestrator(make_jobs(), num_edge_servers=3,
                                     faults=plan).run()

        first, second = run(), run()
        assert first.parity_mismatches(second, TOLERANCE) == []
        assert first.faults is not None
        assert first.faults.mismatches(second.faults) == []

    def test_wan_partition_delays_but_loses_nothing(self):
        plan = FaultPlan(specs=(
            WanDegradation(edge_index=0, at_seconds=0.5,
                           duration_seconds=1.5),))
        clean = FleetOrchestrator(make_jobs(6), num_edge_servers=1).run()
        degraded = FleetOrchestrator(make_jobs(6), num_edge_servers=1,
                                     faults=plan).run()
        assert degraded.faults is not None
        assert degraded.faults.wan_partitions == 1
        assert degraded.makespan_seconds > clean.makespan_seconds
        for outcome in degraded.outcomes:
            assert not math.isnan(outcome.end_seconds)
        # Same bytes moved: the partition queues transfers, never drops.
        assert degraded.edge_cloud_bytes == clean.edge_cloud_bytes

    def test_invalid_plans_rejected_at_construction(self):
        plan = FaultPlan(specs=(EdgeCrash(edge_index=5, at_seconds=1.0),))
        with pytest.raises(FaultError):
            FleetOrchestrator(make_jobs(), num_edge_servers=2, faults=plan)
        doomed = FaultPlan(specs=(
            EdgeCrash(edge_index=0, at_seconds=1.0),
            EdgeCrash(edge_index=1, at_seconds=2.0),
        ))
        with pytest.raises(FaultError):
            FleetOrchestrator(make_jobs(), num_edge_servers=2, faults=doomed)


class TestSchedulerFaultsForceSerial:
    def test_crash_plan_with_workers_matches_serial(self):
        """Cross-edge failover cannot be expressed in the per-edge
        decomposition, so a scheduler-fault plan runs the reference loop
        even when ``fleet_workers > 1`` — and must match it exactly."""
        plan_specs = (EdgeCrash(edge_index=0, at_seconds=1.5),)
        serial = FleetOrchestrator(make_jobs(), num_edge_servers=3,
                                   faults=FaultPlan(specs=plan_specs),
                                   fleet_workers=1).run()
        parallel = FleetOrchestrator(make_jobs(), num_edge_servers=3,
                                     faults=FaultPlan(specs=plan_specs),
                                     fleet_workers=3).run()
        assert serial.parity_mismatches(parallel, TOLERANCE) == []
        assert serial.faults is not None
        assert serial.faults.mismatches(parallel.faults) == []


class TestWorkerKillRecovery:
    def test_killed_worker_shard_is_rerun_inline_bit_exact(self):
        """A worker process dying mid-run (the injected ``WorkerKill``
        poison calls ``os._exit`` inside the pool) breaks the pool; the
        parent must keep every shard that already returned and re-execute
        only the lost shards inline, bit-identical to the serial run."""
        serial = FleetOrchestrator(make_jobs(), num_edge_servers=4,
                                   fleet_workers=1).run()
        plan = FaultPlan(specs=(WorkerKill(edge_index=1),
                                WorkerKill(edge_index=3)))
        killed = FleetOrchestrator(make_jobs(), num_edge_servers=4,
                                   fleet_workers=4, faults=plan).run()
        assert serial.parity_mismatches(killed, TOLERANCE) == []
        # Worker kills act outside the simulation: no fault counters.
        assert killed.faults is None

    def test_worker_kill_plan_is_harmless_on_the_serial_path(self):
        plan = FaultPlan(specs=(WorkerKill(edge_index=0),))
        serial = FleetOrchestrator(make_jobs(6), num_edge_servers=2,
                                   fleet_workers=1).run()
        with_plan = FleetOrchestrator(make_jobs(6), num_edge_servers=2,
                                      fleet_workers=1, faults=plan).run()
        assert serial.parity_mismatches(with_plan, TOLERANCE) == []


class TestFaultFreeBitIdentity:
    def test_no_plan_and_empty_plan_match(self):
        plain = FleetOrchestrator(make_jobs(), num_edge_servers=2).run()
        empty = FleetOrchestrator(make_jobs(), num_edge_servers=2,
                                  faults=FaultPlan()).run()
        assert plain.parity_mismatches(empty, TOLERANCE) == []
        assert plain.faults is None
        assert empty.faults is None
        assert plain.events_processed == empty.events_processed
