"""Self-healing behaviour of the streaming service under injected faults.

Exercises each recovery mechanism in isolation with hand-written fault
plans whose timing is chosen so the interesting state (chunks mid-stage,
sessions mid-stream) definitely exists when the fault fires:

* bounded feeder retries — a never-clearing backpressure wedge ends in a
  counted, reasoned give-up instead of a livelocked event loop;
* transient edge crashes — in-flight chunks are requeued and complete
  after the restart, with the edge's circuit breaker shedding pushes
  while the edge is down;
* permanent edge crashes — live sessions fail over to a healthy edge and
  every pushed chunk still completes;
* the stall watchdog — a stalled stream is closed with reason
  ``"stalled"`` instead of wedging the drain;
* graceful degradation — quota-overflow admissions shed to the degraded
  tenant tier instead of bouncing;
* the standing bit-identity contract — a service with no plan (or an
  empty plan, hooks installed but idle) matches the hookless service
  exactly.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import AdmissionError
from repro.faults import (EdgeCrash, FaultPlan, ResilienceConfig, RetryPolicy,
                          StreamStall)
from repro.service import (ChunkFeeder, FrameChunk, SessionState,
                           StreamingService, TenantPolicy, VirtualClock)

TOLERANCE = 1e-6


def make_chunks(count: int, edge_seconds: float = 0.4,
                cloud_seconds: float = 0.15) -> list:
    return [FrameChunk(num_frames=30, frames_for_inference=3,
                       edge_seconds=edge_seconds, cloud_seconds=cloud_seconds,
                       camera_edge_bytes=600_000, edge_cloud_bytes=80_000)
            for _ in range(count)]


def assert_no_lost_chunks(service: StreamingService) -> None:
    """Every accepted chunk is accounted for: completed or failed out."""
    for session in service.ingest.sessions.values():
        assert session.in_flight == 0
        assert (session.chunks_pushed
                == session.chunks_completed + session.chunks_failed)


class TestBoundedFeederRetries:
    def test_never_clearing_backpressure_ends_in_give_up(self):
        """Regression: the feeder must not livelock against a permanent
        wedge.  Before the retry budget, this drain never returned — every
        bounced push rescheduled another one forever."""
        service = StreamingService(
            num_edge_servers=1,
            tenants=(TenantPolicy(name="tight", max_pending_chunks=1),))
        service.open_session("cam-wedge", tenant="tight")
        # Wedge the pipeline for good: the edge never serves, so the first
        # chunk never completes and in_flight stays pinned at the bound.
        service.edge_stations[0].pause()
        feeder = ChunkFeeder(
            service, "cam-wedge", make_chunks(4), period_seconds=0.5,
            retry_policy=RetryPolicy.constant(0.05, max_attempts=5)).start()
        service.drain()  # terminates: the budget caps the retry loop
        assert feeder.gave_up
        assert not feeder.done
        assert feeder.retries == 5
        assert feeder.attempt_histogram == {5: 1}
        session = service.ingest.sessions["cam-wedge"]
        assert session.close_reason == "backpressure"
        assert session.state is SessionState.DRAINING  # chunk still wedged
        stats = service.fault_stats()
        assert stats is not None
        assert stats.feeder_give_ups == 1
        assert stats.feeder_retries == 5
        assert service.status().close_reasons == {"backpressure": 1}

    def test_exponential_backoff_changes_only_timing(self):
        """A clearing wedge: backoff retries eventually get through."""
        service = StreamingService(
            num_edge_servers=1,
            tenants=(TenantPolicy(name="tight", max_pending_chunks=1),))
        service.open_session("cam", tenant="tight")
        feeder = ChunkFeeder(
            service, "cam", make_chunks(6, edge_seconds=0.6),
            period_seconds=0.2,
            retry_policy=RetryPolicy(max_attempts=32,
                                     base_delay_seconds=0.05,
                                     multiplier=2.0,
                                     max_delay_seconds=0.8)).start()
        service.drain()
        assert feeder.done
        assert not feeder.gave_up
        assert feeder.retries > 0
        assert_no_lost_chunks(service)


class TestTransientCrashRecovery:
    def test_in_flight_chunks_requeue_and_complete(self):
        plan = FaultPlan(specs=(
            EdgeCrash(edge_index=0, at_seconds=0.9,
                      restart_after_seconds=0.6),))
        service = StreamingService(
            num_edge_servers=1, faults=plan,
            resilience=ResilienceConfig(breaker_cooldown_seconds=0.5))
        service.open_session("cam-a")
        service.open_session("cam-b")
        feeders = [
            ChunkFeeder(service, "cam-a", make_chunks(5),
                        period_seconds=0.5).start(),
            ChunkFeeder(service, "cam-b", make_chunks(5),
                        period_seconds=0.5).start(at=0.25),
        ]
        service.drain()
        stats = service.fault_stats()
        assert stats is not None
        assert stats.crashes_seen == 1
        assert stats.edges_restarted == 1
        # The crash caught work mid-stage and it was requeued, not lost.
        assert stats.chunks_failed_over > 0
        assert stats.chunks_dropped == 0
        # The breaker tripped on the crash and shed pushes while open.
        assert stats.breaker_opens >= 1
        assert stats.breaker_rejections > 0
        assert all(feeder.done for feeder in feeders)
        assert_no_lost_chunks(service)
        for session in service.ingest.sessions.values():
            assert session.state is SessionState.CLOSED
            assert session.chunks_completed == 5
        kinds = service.recovery_trace.kinds()
        assert kinds.get("edge-crash") == 1
        assert kinds.get("edge-restart") == 1
        assert kinds.get("chunk-requeued", 0) > 0

    def test_same_plan_same_trace(self):
        def run():
            plan = FaultPlan(specs=(
                EdgeCrash(edge_index=0, at_seconds=0.9,
                          restart_after_seconds=0.6),))
            service = StreamingService(
                num_edge_servers=1, faults=plan,
                resilience=ResilienceConfig(breaker_cooldown_seconds=0.5))
            service.open_session("cam-a")
            ChunkFeeder(service, "cam-a", make_chunks(5),
                        period_seconds=0.5).start()
            service.drain()
            return service

        first, second = run(), run()
        assert first.recovery_trace.mismatches(second.recovery_trace) == []
        assert first.fleet_report().parity_mismatches(
            second.fleet_report(), TOLERANCE) == []


class TestPermanentCrashFailover:
    def test_sessions_relocate_to_a_healthy_edge(self):
        plan = FaultPlan(specs=(EdgeCrash(edge_index=0, at_seconds=1.1),))
        service = StreamingService(num_edge_servers=2, faults=plan)
        service.open_session("cam-a")   # round-robin -> edge 0
        service.open_session("cam-b")   # -> edge 1
        feeders = [
            ChunkFeeder(service, camera, make_chunks(6),
                        period_seconds=0.5).start(at=0.1 * index)
            for index, camera in enumerate(("cam-a", "cam-b"))
        ]
        assert service.ingest.sessions["cam-a"].edge_index == 0
        service.drain()
        stats = service.fault_stats()
        assert stats is not None
        assert stats.crashes_seen == 1
        assert stats.edges_restarted == 0
        assert stats.sessions_relocated == 1
        assert stats.chunks_dropped == 0
        # The failed-over session finished on the surviving edge.
        relocated = service.ingest.sessions["cam-a"]
        assert relocated.edge_index == 1
        assert all(feeder.done for feeder in feeders)
        assert_no_lost_chunks(service)
        for session in service.ingest.sessions.values():
            assert session.chunks_completed == 6
        assert service.recovery_trace.kinds().get("session-failover") == 1
        # New placements skip the dead edge.
        late = service.open_session("cam-late")
        assert late.edge_index == 1

    def test_pinned_placement_on_dead_edge_is_refused(self):
        plan = FaultPlan(specs=(EdgeCrash(edge_index=0, at_seconds=0.1),))
        service = StreamingService(num_edge_servers=2, faults=plan)
        service.run_for(0.2)
        with pytest.raises(AdmissionError):
            service.open_session("cam-pinned", edge_index=0)


class TestStallWatchdog:
    def test_stalled_session_is_closed_with_reason(self):
        plan = FaultPlan(specs=(
            StreamStall(camera="cam-stall", at_seconds=0.6,
                        duration_seconds=4.0),))
        service = StreamingService(
            num_edge_servers=1, faults=plan,
            resilience=ResilienceConfig(stall_timeout_seconds=1.0,
                                        watchdog_period_seconds=0.25),
            tenants=(TenantPolicy(name="narrow", max_pending_chunks=2),))
        # The narrow in-flight bound makes the stall *observable*: once two
        # chunks are wedged behind the paused uplink, further pushes bounce
        # and the session stops making progress — which is what the
        # watchdog's idle clock measures.
        service.open_session("cam-stall", tenant="narrow")
        service.open_session("cam-fine")
        stalled_feeder = ChunkFeeder(service, "cam-stall", make_chunks(8),
                                     period_seconds=0.4).start()
        fine_feeder = ChunkFeeder(service, "cam-fine", make_chunks(4),
                                  period_seconds=0.4).start(at=0.05)
        service.drain()
        stats = service.fault_stats()
        assert stats is not None
        assert stats.stream_stalls == 1
        assert stats.sessions_stalled == 1
        session = service.ingest.sessions["cam-stall"]
        assert session.close_reason == "stalled"
        assert session.state is SessionState.CLOSED
        # The feeder noticed the close instead of erroring the event loop.
        assert stalled_feeder.halted
        assert not stalled_feeder.done
        assert fine_feeder.done
        assert_no_lost_chunks(service)
        assert service.status().close_reasons["stalled"] == 1

    def test_watchdog_disabled_by_default(self):
        service = StreamingService(num_edge_servers=1, faults=FaultPlan())
        assert service._fault_driver is not None
        service.open_session("cam")
        ChunkFeeder(service, "cam", make_chunks(2),
                    period_seconds=0.5).start()
        service.drain()  # terminates without a watchdog rearm loop
        assert service.fault_stats() is None


class TestGracefulDegradation:
    def test_quota_overflow_sheds_to_degraded_tier(self):
        service = StreamingService(
            num_edge_servers=1,
            tenants=(TenantPolicy(name="gold", max_sessions=1),),
            degraded_tenant=TenantPolicy(name="degraded", max_sessions=8,
                                         max_pending_chunks=2))
        first = service.open_session("cam-1", tenant="gold")
        shed = service.open_session("cam-2", tenant="gold")
        assert first.tenant == "gold"
        assert shed.tenant == "degraded"
        assert shed.max_pending_chunks == 2
        assert service.ingest.sessions_degraded == 1
        status = service.status()
        assert status.sessions_degraded == 1
        assert status.sessions_rejected == 0
        stats = service.fault_stats()
        assert stats is not None and stats.sessions_degraded == 1

    def test_hard_refusals_still_raise(self):
        service = StreamingService(
            num_edge_servers=1, max_sessions=1,
            degraded_tenant=TenantPolicy(name="degraded"))
        service.open_session("cam-1")
        with pytest.raises(AdmissionError):
            # Service-wide cap is not sheddable: the degraded tier cannot
            # conjure capacity the whole service lacks.
            service.open_session("cam-2")


class TestFaultFreeBitIdentity:
    def _run(self, **kwargs) -> StreamingService:
        service = StreamingService(num_edge_servers=2, clock=VirtualClock(),
                                   **kwargs)
        for index in range(4):
            camera = f"cam-{index}"
            service.open_session(camera)
            ChunkFeeder(service, camera, make_chunks(3),
                        period_seconds=0.5).start(at=0.1 * index)
        service.drain()
        return service

    def test_empty_plan_matches_hookless_service_exactly(self):
        plain = self._run()
        hooked = self._run(faults=FaultPlan())
        assert plain.fleet_report().parity_mismatches(
            hooked.fleet_report(), TOLERANCE) == []
        assert plain.fleet_report().faults is None
        assert hooked.fleet_report().faults is None
        assert hooked.fault_stats() is None
        assert len(hooked.recovery_trace) == 0
        # Same event count: the idle hooks schedule nothing.
        assert (plain.scheduler.events_processed
                == hooked.scheduler.events_processed)

    def test_fault_free_status_matches_seed_shape(self):
        plain = self._run()
        status = plain.status()
        assert status.fault_counters == {}
        assert status.breaker_states == {}
        assert status.sessions_degraded == 0
        report = plain.fleet_report()
        assert report.faults is None
        assert all(not math.isnan(outcome.end_seconds)
                   for outcome in report.outcomes)
