"""Property-driven scenario fuzzing and the repro-file contract.

The hypothesis strategies sample the same composition space as
``examples/scenario_fuzz.py`` (base scenario x transform presets x seed)
and hold every composition to the cross-layer invariant set.  A shrunk
failing example is exactly a :class:`ScenarioComposition`, and the tests
below also pin that the JSON repro files round-trip, that the fuzz runner
is deterministic (the property the ``scenario-fuzz-smoke`` CI job diffs),
and that failures actually produce replayable repro files.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import DatasetError
from repro.video import fuzzing
from repro.video.fuzzing import (FUZZ_GRID, FUZZ_PARAMETERS,
                                 ScenarioComposition, check_composition,
                                 fuzz_base_names, run_fuzz,
                                 sample_composition)
from repro.video.transforms import TRANSFORMS
from repro.rng import make_rng

compositions = st.builds(
    ScenarioComposition,
    base=st.sampled_from(fuzz_base_names()),
    transforms=st.lists(st.sampled_from(sorted(TRANSFORMS)),
                        unique=True, max_size=3).map(tuple),
    seed=st.integers(min_value=1, max_value=50_000),
)


class TestInvariantProperties:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(composition=compositions)
    def test_random_compositions_uphold_all_single_process_invariants(
            self, composition):
        # The multiprocess fleet-parity leg runs in the deterministic test
        # below — spawning a process pool per hypothesis example would
        # dominate the suite for no extra coverage of *this* property.
        result = check_composition(composition, fleet=False)
        assert result.ok, (
            f"composition {composition.describe()} broke: " + "; ".join(
                f"{violation.invariant}: {violation.detail}"
                for violation in result.violations))

    def test_composed_scenario_upholds_invariants_including_fleet_parity(self):
        composition = ScenarioComposition(
            "highway", ("rain", "night_cycle"), seed=77)
        result = check_composition(composition, fleet=True)
        assert result.ok, [violation.detail
                           for violation in result.violations]


class TestReproFiles:
    @settings(max_examples=20, deadline=None)
    @given(composition=compositions)
    def test_repro_json_roundtrip(self, composition):
        parsed = ScenarioComposition.from_json(composition.to_json())
        assert parsed == composition
        assert parsed.spec == composition.spec

    def test_malformed_repro_raises_dataset_error(self):
        with pytest.raises(DatasetError):
            ScenarioComposition.from_json("{\"base\": \"highway\"}")
        with pytest.raises(DatasetError):
            ScenarioComposition.from_json("not json at all")

    def test_failures_write_replayable_repro_files(self, tmp_path,
                                                   monkeypatch):
        broken = ScenarioComposition("no_such_scenario", (), seed=1)
        monkeypatch.setattr(fuzzing, "sample_composition",
                            lambda rng: broken)
        run = run_fuzz(1, 0, out_dir=str(tmp_path))
        assert len(run.failures) == 1
        assert run.results[0].violations[0].invariant == "crash"
        assert len(run.repro_paths) == 1
        with open(run.repro_paths[0], "r", encoding="utf-8") as handle:
            replayed = ScenarioComposition.from_json(handle.read())
        assert replayed == broken
        assert "FAIL[crash]" in run.lines()[1]


class TestDeterminism:
    def test_same_seed_runs_are_identical(self):
        first = run_fuzz(3, 42, fleet=False)
        second = run_fuzz(3, 42, fleet=False)
        assert first.lines() == second.lines()

    def test_different_seeds_sample_different_compositions(self):
        first = [result.composition
                 for result in run_fuzz(0, 1, fleet=False).results]
        a = [sample_composition(make_rng(1, "scenario-fuzz", str(i)))
             for i in range(6)]
        b = [sample_composition(make_rng(2, "scenario-fuzz", str(i)))
             for i in range(6)]
        assert a != b

    def test_sampled_compositions_are_valid_specs(self):
        for index in range(20):
            composition = sample_composition(
                make_rng(9, "scenario-fuzz", str(index)))
            profile = composition.build_profile()
            assert profile.seed == composition.seed
            assert len(set(composition.transforms)) == len(
                composition.transforms)


class TestFuzzConfiguration:
    def test_fuzz_grid_contains_the_fuzz_parameters_gop(self):
        # The encode parameters must be representable by the tuner grid so
        # a "tuner found the encode config" degenerate case stays possible.
        assert FUZZ_PARAMETERS.gop_size in FUZZ_GRID.gop_sizes

    def test_base_names_exclude_composed_entries(self):
        assert all("+" not in name for name in fuzz_base_names())
        assert "highway" in fuzz_base_names()
