"""Regression: the fleet scheduler reproduces the seed end-to-end results.

The seed's :class:`EndToEndSimulation` charged every stage serially; that
exact implementation is preserved as ``run_serial``.  The rewired ``run``
executes the same workloads through the discrete-event fleet simulator in
single-edge mode and must reproduce the seed's throughput/bytes outputs to
within floating-point reassociation (the PR's acceptance bound is 1e-6).
"""

import math

import pytest

from repro import SystemConfig
from repro.cluster import FleetOrchestrator
from repro.core import (ALL_DEPLOYMENT_MODES, DeploymentMode,
                        EndToEndSimulation, build_workload, plan_camera_job)
from repro.datasets import build_dataset
from repro.datasets.generator import DatasetInstance
from repro.datasets.registry import DatasetSpec
from repro.video import RESOLUTION_720P, SyntheticScene, make_scenario

TOLERANCE = 1e-6


@pytest.fixture(scope="module")
def workload():
    """One small labelled dataset, the regression pin's subject."""
    instance = build_dataset("jackson_square", duration_seconds=10,
                             render_scale=0.08)
    return build_workload(instance, config=SystemConfig())


@pytest.fixture(scope="module")
def simulation(workload):
    return EndToEndSimulation([workload], SystemConfig())


class TestSingleEngineParity:
    @pytest.mark.parametrize("mode", ALL_DEPLOYMENT_MODES,
                             ids=lambda mode: mode.name)
    def test_fleet_run_matches_seed_serial_run(self, simulation, mode):
        fleet = simulation.run(mode)
        seed = simulation.run_serial(mode)
        assert fleet.total_frames == seed.total_frames
        assert fleet.frames_for_inference == seed.frames_for_inference
        # Byte totals are integers and must match exactly.
        assert fleet.camera_edge_bytes == seed.camera_edge_bytes
        assert fleet.edge_cloud_bytes == seed.edge_cloud_bytes
        for attribute in ("edge_seconds", "cloud_seconds", "transfer_seconds",
                          "total_seconds", "throughput_fps"):
            assert getattr(fleet, attribute) == pytest.approx(
                getattr(seed, attribute), rel=TOLERANCE, abs=TOLERANCE), attribute
        if seed.accuracy is None:
            assert fleet.accuracy is None
        else:
            assert fleet.accuracy == pytest.approx(seed.accuracy, abs=TOLERANCE)

    @pytest.mark.parametrize("mode", ALL_DEPLOYMENT_MODES,
                             ids=lambda mode: mode.name)
    def test_per_video_breakdowns_match(self, simulation, workload, mode):
        fleet = simulation.run(mode).per_video[workload.name]
        seed = simulation.run_serial(mode).per_video[workload.name]
        assert fleet.keys() == seed.keys()
        for key in seed:
            if math.isnan(seed[key]):
                assert math.isnan(fleet[key])
            else:
                assert fleet[key] == pytest.approx(seed[key], rel=TOLERANCE,
                                                   abs=TOLERANCE), key

    def test_fleet_report_attached_and_consistent(self, simulation):
        report = simulation.run(DeploymentMode.IFRAME_EDGE_CLOUD_NN)
        assert report.fleet is not None
        assert report.fleet.num_edge_servers == 1
        assert report.fleet.edge_busy_seconds == pytest.approx(
            report.edge_seconds)
        assert report.fleet.cloud_busy_seconds == pytest.approx(
            report.cloud_seconds)
        assert report.fleet.edge_cloud_bytes == report.edge_cloud_bytes


class TestMultiEdgeInvariants:
    def test_multi_edge_keeps_figure4_metrics(self, workload):
        """Busy-time and byte totals are placement-invariant, so the Figure
        4/5 numbers survive sharding across a fleet unchanged."""
        mode = DeploymentMode.IFRAME_EDGE_CLOUD_NN
        workloads = [workload] * 4
        single = EndToEndSimulation(workloads, SystemConfig()).run(mode)
        fleet = EndToEndSimulation(workloads, SystemConfig(),
                                   num_edge_servers=3,
                                   placement="least-loaded").run(mode)
        assert fleet.throughput_fps == pytest.approx(single.throughput_fps,
                                                     rel=TOLERANCE)
        assert fleet.edge_cloud_bytes == single.edge_cloud_bytes
        assert fleet.fleet.num_edge_servers == 3
        # ... but the fleet drains the corpus in less virtual time.
        assert fleet.fleet.makespan_seconds < single.fleet.makespan_seconds

    def test_plan_matches_serial_breakdown(self, simulation, workload):
        """plan_camera_job is the single source of the per-stage charges."""
        for mode in ALL_DEPLOYMENT_MODES:
            job = plan_camera_job(workload, mode, simulation.cost_model)
            seed = simulation.run_serial(mode).per_video[workload.name]
            assert job.edge_seconds == pytest.approx(seed["edge_seconds"],
                                                     abs=TOLERANCE)
            assert job.cloud_seconds == pytest.approx(seed["cloud_seconds"],
                                                      abs=TOLERANCE)
            assert job.camera_edge_bytes == int(seed["camera_edge_bytes"])
            assert job.edge_cloud_bytes == int(seed["edge_cloud_bytes"])


class TestMultiprocessParity:
    """Acceptance: ``fleet_workers=N`` equals the serial path (1e-6 bound)
    on the highway and fleet-scaling scenarios."""

    @pytest.fixture(scope="class")
    def highway_jobs(self, workload):
        """A small fleet-scaling-style fleet: Table I workload + highway,
        cycled over eight cameras."""
        spec = DatasetSpec(
            name="highway", objects=("car", "truck"),
            nominal_resolution=RESOLUTION_720P, fps=30.0,
            paper_duration_hours=4.0,
            description="fast vehicles crossing a highway overpass",
            has_labels=False)
        profile = make_scenario("highway", duration_seconds=8,
                                render_scale=0.06)
        instance = DatasetInstance(spec=spec, profile=profile,
                                   video=SyntheticScene(profile).video())
        highway = build_workload(instance, config=SystemConfig())
        workloads = [workload, highway]
        mode = DeploymentMode.IFRAME_EDGE_CLOUD_NN
        return [plan_camera_job(workloads[index % 2], mode,
                                camera=f"cam-{index:02d}")
                for index in range(8)]

    def _assert_fleet_reports_match(self, serial, parallel):
        assert serial.parity_mismatches(parallel, TOLERANCE) == []

    @pytest.mark.parametrize("num_edges", [1, 3, 4])
    def test_highway_fleet_parallel_matches_serial(self, highway_jobs,
                                                   num_edges):
        serial = FleetOrchestrator(highway_jobs, num_edge_servers=num_edges,
                                   policy="least-loaded").run()
        parallel = FleetOrchestrator(highway_jobs, num_edge_servers=num_edges,
                                     policy="least-loaded",
                                     fleet_workers=2).run()
        self._assert_fleet_reports_match(serial, parallel)

    def test_end_to_end_simulation_with_fleet_workers(self, workload):
        """``SystemConfig.fleet_workers`` flows through the deployment
        simulation unchanged: every Figure 4/5 metric is preserved."""
        mode = DeploymentMode.IFRAME_EDGE_CLOUD_NN
        workloads = [workload] * 4
        serial = EndToEndSimulation(workloads, SystemConfig(),
                                    num_edge_servers=2).run(mode)
        parallel = EndToEndSimulation(workloads,
                                      SystemConfig(fleet_workers=2),
                                      num_edge_servers=2).run(mode)
        assert parallel.throughput_fps == pytest.approx(
            serial.throughput_fps, rel=TOLERANCE)
        assert parallel.edge_cloud_bytes == serial.edge_cloud_bytes
        assert parallel.camera_edge_bytes == serial.camera_edge_bytes
        assert parallel.edge_seconds == pytest.approx(serial.edge_seconds,
                                                      rel=TOLERANCE)
        self._assert_fleet_reports_match(serial.fleet, parallel.fleet)


def make_night_instance() -> DatasetInstance:
    """The flickering low-light clip both sides of the night tests share.

    One constructor keeps the exact and fast builds on the *same* footage —
    two drifting copies would silently turn the fast-vs-exact comparison
    into a comparison across different clips.
    """
    spec = DatasetSpec(
        name="night", objects=("car", "person"),
        nominal_resolution=RESOLUTION_720P, fps=30.0,
        paper_duration_hours=4.0,
        description="flickering low-light intersection",
        has_labels=True)
    profile = make_scenario("night", duration_seconds=10, render_scale=0.08)
    return DatasetInstance(spec=spec, profile=profile,
                           video=SyntheticScene(profile).video())


class TestNightScenario:
    """The flickering low-light profile flows through the whole fleet path:
    serial == scheduled == multiprocess, under both precision modes, and
    the scene-cut stage does not degenerate under sub-threshold flicker."""

    @pytest.fixture(scope="class")
    def night_workload(self):
        # Pinned exact: this workload doubles as the reference side of the
        # fast-vs-exact comparison below, which must stay differential even
        # on the REPRO_PRECISION=fast CI leg.
        return build_workload(make_night_instance(),
                              config=SystemConfig(precision="exact"))

    def test_flicker_does_not_storm_iframes(self, night_workload):
        # The lamp flicker sits below the novel-pixel threshold: the
        # semantic encoding must select far fewer I-frames than frames,
        # but still at least one per genuine event.
        assert 0 < night_workload.num_semantic_iframes
        assert (night_workload.num_semantic_iframes
                < 0.3 * night_workload.num_frames)

    @pytest.mark.parametrize("mode", ALL_DEPLOYMENT_MODES,
                             ids=lambda mode: mode.name)
    def test_fleet_run_matches_seed_serial_run(self, night_workload, mode):
        simulation = EndToEndSimulation([night_workload], SystemConfig())
        fleet = simulation.run(mode)
        seed = simulation.run_serial(mode)
        assert fleet.total_frames == seed.total_frames
        assert fleet.edge_cloud_bytes == seed.edge_cloud_bytes
        assert fleet.throughput_fps == pytest.approx(seed.throughput_fps,
                                                     rel=TOLERANCE)

    def test_multiprocess_parity(self, night_workload):
        mode = DeploymentMode.IFRAME_EDGE_CLOUD_NN
        jobs = [plan_camera_job(night_workload, mode,
                                camera=f"night-{index}")
                for index in range(4)]
        serial = FleetOrchestrator(jobs, num_edge_servers=2).run()
        parallel = FleetOrchestrator(jobs, num_edge_servers=2,
                                     fleet_workers=2).run()
        assert serial.parity_mismatches(parallel, TOLERANCE) == []

    def test_fast_precision_workload_close_to_exact(self, night_workload):
        from repro.contracts import FAST_CONTRACT, selection_agreement
        fast = build_workload(make_night_instance(),
                              config=SystemConfig(precision="fast"))
        assert selection_agreement(night_workload.semantic_samples,
                                   fast.semantic_samples) >= (
            FAST_CONTRACT.detections.min_agreement)
