"""Integration tests: the Sieve facade and the paper's headline claims."""

import pytest

from repro import DeploymentMode, Sieve, SystemConfig
from repro.codec import EncoderParameters, VideoDecoder, VideoEncoder
from repro.core import MseEventDetector, SieveEventDetector
from repro.datasets import build_dataset
from repro.nn import OracleDetector
from repro.video import SyntheticScene, make_scenario


class TestSieveFacade:
    @pytest.fixture(scope="class")
    def sieve_and_video(self, quick_scenario_video):
        sieve = Sieve()
        sieve.tune_camera("jackson_square", quick_scenario_video)
        return sieve, quick_scenario_video

    def test_tuning_stored_in_lookup_table(self, sieve_and_video):
        sieve, _ = sieve_and_video
        assert "jackson_square" in sieve.lookup_table
        parameters = sieve.parameters_for("jackson_square")
        assert parameters != sieve.parameters_for("unknown-camera")

    def test_analyze_video_labels_every_frame(self, sieve_and_video):
        sieve, video = sieve_and_video
        result = sieve.analyze_video(video, "jackson_square")
        assert len(result.frame_labels) == video.metadata.num_frames
        assert result.keyframe_indices[0] == 0
        assert result.score is not None and result.score.accuracy > 0.8
        # Per-frame labels agree with the propagation accuracy definition.
        truth = video.timeline.frame_labels()
        correct = sum(1 for observed, expected in zip(result.frame_labels, truth)
                      if observed == expected)
        assert correct / len(truth) == pytest.approx(result.score.accuracy)
        # Results were recorded in the result database, one row per segment.
        assert len(sieve.results.records_for_video("jackson_square")) == \
            len(result.keyframe_indices)

    def test_simulate_deployment_small(self):
        sieve = Sieve(SystemConfig())
        instances = [build_dataset("jackson_square", 15, 0.08),
                     build_dataset("coral_reef", 15, 0.08)]
        report = sieve.simulate_deployment(instances,
                                           DeploymentMode.IFRAME_EDGE_CLOUD_NN)
        assert report.total_frames == sum(i.video.metadata.num_frames
                                          for i in instances)
        assert report.throughput_fps > 0
        assert report.accuracy is not None and report.accuracy > 0.7


class TestPaperClaims:
    """End-to-end checks of the claims in the abstract, at reduced scale."""

    @pytest.fixture(scope="class")
    def tuned_setup(self):
        profile = make_scenario("jackson_square", duration_seconds=30,
                                render_scale=0.1)
        video = SyntheticScene(profile).video()
        sieve = Sieve()
        tuning = sieve.tune_camera("jackson_square", video)
        return video, tuning

    def test_high_accuracy_with_few_decoded_frames(self, tuned_setup):
        """"close to 100% object detection accuracy with decompressing only
        3.5% of the video frames" (abstract) — at clip scale we require >90 %
        accuracy below 6 % sampling."""
        video, tuning = tuned_setup
        best = tuning.best.score
        assert best.accuracy > 0.90
        # The paper reports ~3.5 % on multi-hour feeds; a 30-second clip has a
        # much higher event density, so the bound is proportionally looser.
        assert best.sampling_fraction < 0.08

    def test_event_detection_speedup_over_decode_baselines(self, tuned_setup):
        """">100x speedup compared to classical approaches that decompress
        every video frame" — checked through the calibrated cost model."""
        video, tuning = tuned_setup
        detector = SieveEventDetector(tuning.best_parameters)
        from repro.video import RESOLUTION_400P
        result = detector.detect(video, cost_resolution=RESOLUTION_400P)
        from repro.cluster import CostModel
        mse_fps = CostModel().event_detection_fps("mse", RESOLUTION_400P)
        assert result.simulated_fps / mse_fps > 50

    def test_sieve_accuracy_dominates_mse_at_same_budget(self, tuned_setup):
        video, tuning = tuned_setup
        sieve_result = SieveEventDetector(tuning.best_parameters).detect(video)
        mse = MseEventDetector()
        mse.fit_threshold(video, sieve_result.sampling_fraction)
        mse_result = mse.detect(video)
        assert sieve_result.score.accuracy >= mse_result.score.accuracy - 0.02


class TestCodecPipelineIntegration:
    def test_encode_store_seek_decode_detect(self, quick_scenario_video):
        """The full edge path on real payloads: encode -> container ->
        seek -> still-image decode -> oracle labels."""
        parameters = EncoderParameters(gop_size=500, scenecut_threshold=250)
        encoded = VideoEncoder(parameters).encode(quick_scenario_video,
                                                  materialise_payload=True)
        data = encoded.serialize()

        from repro.codec import EncodedVideo, IFrameSeeker
        parsed = EncodedVideo.deserialize(data)
        keyframes, stats = IFrameSeeker().seek_with_stats(parsed)
        assert 0 < stats.sampling_fraction < 0.2

        decoder = VideoDecoder()
        oracle = OracleDetector(quick_scenario_video.timeline)
        labelled = 0
        for keyframe in keyframes:
            pixels = decoder.decode_keyframe(keyframe)
            assert pixels.shape == quick_scenario_video.metadata.resolution.shape
            labels = oracle.detect(keyframe.index, pixels)
            assert labels == quick_scenario_video.timeline.labels_at(keyframe.index)
            labelled += 1
        assert labelled == stats.num_keyframes
