"""Tests for the simulated network links, channels and the 3-tier topology."""

import pytest

from repro.config import SystemConfig
from repro.errors import NetworkError
from repro.net import Channel, NetworkLink, ThreeTierTopology


class TestNetworkLink:
    def test_transfer_time_matches_bandwidth(self):
        link = NetworkLink("wan", bandwidth_mbps=30.0, latency_ms=0.0)
        # 30 Mbps == 3.75 MB/s, so 3.75 MB takes one second.
        assert link.transfer_seconds(3_750_000) == pytest.approx(1.0)

    def test_latency_added(self):
        link = NetworkLink("wan", bandwidth_mbps=1000.0, latency_ms=50.0)
        assert link.transfer_seconds(0) == pytest.approx(0.05)

    def test_accounting(self):
        link = NetworkLink("wan", bandwidth_mbps=10.0)
        link.transfer(1000, "a")
        link.transfer(2000, "b")
        assert link.total_bytes == 3000
        assert len(link.transfers) == 2
        assert link.total_seconds == pytest.approx(link.transfer_seconds(1000)
                                                   + link.transfer_seconds(2000))
        link.reset()
        assert link.total_bytes == 0

    def test_validation(self):
        with pytest.raises(NetworkError):
            NetworkLink("bad", bandwidth_mbps=0.0)
        link = NetworkLink("ok", bandwidth_mbps=1.0)
        with pytest.raises(NetworkError):
            link.transfer_seconds(-1)


class TestChannel:
    def test_fifo_delivery_and_accounting(self):
        link = NetworkLink("wan", bandwidth_mbps=8.0)
        channel = Channel("edge", "cloud", link)
        channel.send("first", 1000)
        channel.send("second", 2000)
        assert channel.pending == 2
        assert channel.receive().payload == "first"
        assert [message.payload for message in channel.receive_all()] == ["second"]
        assert channel.receive() is None
        assert link.total_bytes == 3000
        assert channel.delivered_messages == 2

    def test_negative_size_rejected(self):
        channel = Channel("a", "b", NetworkLink("l", 1.0))
        with pytest.raises(NetworkError):
            channel.send("x", -1)


class TestTopology:
    def test_camera_registration_and_links(self):
        topology = ThreeTierTopology(config=SystemConfig())
        link = topology.add_camera("jackson_square")
        assert topology.camera_link("jackson_square") is link
        assert topology.cameras == ["jackson_square"]
        assert topology.edge_cloud_link.bandwidth_mbps == 30.0
        with pytest.raises(NetworkError):
            topology.add_camera("jackson_square")
        with pytest.raises(NetworkError):
            topology.camera_link("unknown")

    def test_byte_accounting_and_reset(self):
        topology = ThreeTierTopology()
        topology.add_camera("a").transfer(500)
        topology.add_camera("b").transfer(700)
        topology.edge_cloud_link.transfer(900)
        assert topology.total_camera_edge_bytes() == 1200
        assert topology.total_edge_cloud_bytes() == 900
        topology.reset()
        assert topology.total_camera_edge_bytes() == 0
        assert topology.total_edge_cloud_bytes() == 0
