"""Batched inference must be exactly equal to per-example inference.

Every layer processes a batch through the same per-example-shaped GEMMs and
order-independent reductions, so batched outputs are bit-identical to
running the examples one by one — these tests pin that contract for every
layer type, for the full YoloLite model, and for the batched frame
classification / detection paths built on top.
"""

import numpy as np
import pytest

from repro.dataflow.builtin_ops import DetectObjectsOperator, FrameTask
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.operator import SinkOperator, SourceOperator
from repro.errors import DataflowError, ModelError
from repro.nn import (Conv2D, Dense, Flatten, GlobalAveragePool, MaxPool2D,
                      NNDetector, ReLU, Softmax, build_yolo_lite,
                      classify_frame, classify_frames, preprocess_frames)
from repro.nn.oracle import ConstantDetector


@pytest.fixture(scope="module")
def feature_batch():
    return np.random.default_rng(11).normal(size=(6, 3, 13, 17))


@pytest.fixture(scope="module")
def vector_batch():
    return np.random.default_rng(12).normal(size=(6, 24))


FEATURE_LAYERS = [
    Conv2D(3, 5, kernel_size=3, padding="same", name="c-same"),
    Conv2D(3, 5, kernel_size=3, padding="valid", name="c-valid"),
    Conv2D(3, 4, kernel_size=5, stride=2, padding="same", name="c-stride"),
    MaxPool2D(2, "p2"),
    MaxPool2D(3, "p3"),
    GlobalAveragePool("gap"),
    Flatten("flat"),
    ReLU("relu"),
]

VECTOR_LAYERS = [
    Dense(24, 7, name="dense"),
    Softmax("softmax"),
    ReLU("relu-v"),
]


class TestLayerBatchEquivalence:
    @pytest.mark.parametrize("layer", FEATURE_LAYERS, ids=lambda l: l.name)
    def test_feature_layer_batch_equals_per_example(self, layer, feature_batch):
        batched = layer.forward(feature_batch)
        singles = np.stack([layer.forward(example) for example in feature_batch])
        assert batched.shape == singles.shape
        assert np.array_equal(batched, singles)

    @pytest.mark.parametrize("layer", VECTOR_LAYERS, ids=lambda l: l.name)
    def test_vector_layer_batch_equals_per_example(self, layer, vector_batch):
        batched = layer.forward(vector_batch)
        singles = np.stack([layer.forward(example) for example in vector_batch])
        assert np.array_equal(batched, singles)

    def test_batch_of_one_equals_single(self, feature_batch):
        conv = Conv2D(3, 5, name="c1")
        single = conv.forward(feature_batch[0])
        assert np.array_equal(conv.forward(feature_batch[:1])[0], single)

    def test_invalid_ranks_rejected(self):
        with pytest.raises(ModelError):
            Conv2D(1, 1).forward(np.zeros((2, 2)))
        with pytest.raises(ModelError):
            Dense(4, 2).forward(np.zeros(5))

    def test_dense_ravels_single_multi_dim_inputs(self):
        """Seed compat: a feature map can feed a Dense without a Flatten."""
        dense = Dense(12, 3)
        feature_map = np.random.default_rng(0).normal(size=(3, 2, 2))
        direct = dense.forward(feature_map)
        assert direct.shape == (3,)
        assert np.array_equal(direct, dense.forward(feature_map.ravel()))
        # A (batch, in_features) input is still a batch, not a ravel target.
        batch = np.random.default_rng(1).normal(size=(2, 12))
        assert dense.forward(batch).shape == (2, 3)

    def test_softmax_ravels_single_multi_dim_inputs(self):
        probabilities = Softmax().forward(np.ones((2, 3, 4)))
        assert probabilities.shape == (24,)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_flatten_keeps_batch_axis_for_flat_batches(self):
        """A (batch, features) batch must pass through Flatten unchanged."""
        batch = np.random.default_rng(2).normal(size=(5, 7))
        assert np.array_equal(Flatten().forward(batch), batch)

    def test_gap_flatten_dense_chain_batches(self):
        """Regression: [GAP, Flatten, Dense] batched == per-example."""
        from repro.nn import SequentialModel
        model = SequentialModel(
            [Conv2D(1, 4, name="c"), GlobalAveragePool(), Flatten(),
             Dense(4, 2)], input_shape=(1, 8, 8))
        batch = np.random.default_rng(3).normal(size=(3, 1, 8, 8))
        batched = model.forward(batch)
        singles = np.stack([model.forward(example) for example in batch])
        assert np.array_equal(batched, singles)


class TestModelBatchEquivalence:
    @pytest.fixture(scope="class")
    def model(self):
        return build_yolo_lite(input_size=(32, 32), width_multiplier=0.5)

    def test_forward_batch_equals_per_example(self, model):
        batch = np.random.default_rng(0).normal(size=(9,) + model.input_shape)
        batched = model.forward(batch)
        singles = np.stack([model.forward(example) for example in batch])
        assert np.array_equal(batched, singles)

    def test_forward_range_accepts_batches(self, model):
        batch = np.random.default_rng(1).normal(size=(4,) + model.input_shape)
        split = model.num_layers // 2
        partial = model.forward_range(batch, 0, split)
        resumed = model.forward_range(partial, split, model.num_layers)
        assert np.array_equal(resumed, model.forward(batch))

    def test_predict_classes_matches_predict_class(self, model):
        batch = np.random.default_rng(2).normal(size=(5,) + model.input_shape)
        indices, outputs = model.predict_classes(batch)
        for position, example in enumerate(batch):
            index, vector = model.predict_class(example)
            assert int(indices[position]) == index
            assert np.array_equal(outputs[position], vector)

    def test_predict_classes_rejects_single_example(self, model):
        with pytest.raises(ModelError):
            model.predict_classes(np.zeros(model.input_shape))

    def test_batch_shape_mismatch_rejected(self, model):
        with pytest.raises(ModelError):
            model.forward(np.zeros((3, 2, 32, 32)))


class TestClassifyFrames:
    @pytest.fixture(scope="class")
    def model(self):
        return build_yolo_lite(input_size=(32, 32), width_multiplier=0.5)

    @pytest.fixture(scope="class")
    def frames(self):
        rng = np.random.default_rng(3)
        return [rng.integers(0, 255, size=(48, 64), dtype=np.uint8)
                for _ in range(7)]

    def test_matches_classify_frame(self, model, frames):
        labels, probabilities = classify_frames(model, frames, batch_size=3)
        assert probabilities.shape == (len(frames), len(model.classes))
        for position, frame in enumerate(frames):
            label, vector = classify_frame(model, frame)
            assert labels[position] == label
            assert np.array_equal(probabilities[position], vector)

    def test_chunk_size_does_not_change_results(self, model, frames):
        first = classify_frames(model, frames, batch_size=1)
        second = classify_frames(model, frames, batch_size=100)
        assert first[0] == second[0]
        assert np.array_equal(first[1], second[1])

    def test_empty_input(self, model):
        labels, probabilities = classify_frames(model, [], batch_size=4)
        assert labels == []
        assert probabilities.shape == (0, len(model.classes))

    def test_invalid_batch_size(self, model, frames):
        with pytest.raises(ModelError):
            classify_frames(model, frames, batch_size=0)

    def test_preprocess_frames_stacks(self, frames):
        tensors = preprocess_frames(frames, (32, 32))
        assert tensors.shape == (len(frames), 1, 32, 32)


class TestNNDetector:
    @pytest.fixture(scope="class")
    def model(self):
        return build_yolo_lite(input_size=(32, 32), width_multiplier=0.25)

    def test_batch_equals_per_frame(self, model):
        rng = np.random.default_rng(4)
        frames = [rng.integers(0, 255, size=(40, 40), dtype=np.uint8)
                  for _ in range(5)]
        detector = NNDetector(model, batch_size=2)
        batched = detector.detect_batch(list(range(5)), frames)
        assert batched == [detector.detect(index, frame)
                           for index, frame in enumerate(frames)]
        # Background maps to the empty label set, everything else to {label}.
        assert all(labels == frozenset() or len(labels) == 1
                   for labels in batched)

    def test_needs_pixels(self, model):
        detector = NNDetector(model)
        with pytest.raises(ModelError):
            detector.detect_batch([0], [None])

    def test_needs_class_list(self, model):
        from repro.nn import SequentialModel
        bare = SequentialModel(model.layers, model.input_shape)
        with pytest.raises(ModelError):
            NNDetector(bare)


class TestBatchedDetectOperator:
    def _run_engine(self, batch_size, num_items=7):
        engine = DataflowEngine("detect")
        rng = np.random.default_rng(5)
        tasks = [FrameTask(video_name="v", frame_index=index,
                           pixels=rng.integers(0, 255, size=(16, 16)))
                 for index in range(num_items)]
        engine.add_operator(SourceOperator("source", tasks))
        detect = engine.add_operator(DetectObjectsOperator(
            "detect", ConstantDetector({"car"}), cost_per_frame_seconds=0.5,
            batch_size=batch_size))
        engine.add_operator(SinkOperator("sink"))
        engine.connect("source", "detect")
        engine.connect("detect", "sink")
        return engine, detect, engine.run()

    def test_batched_operator_labels_everything(self):
        engine, detect, sinks = self._run_engine(batch_size=3)
        assert len(sinks["sink"]) == 7
        assert all(task.labels == frozenset({"car"}) for task in sinks["sink"])
        # Total simulated cost is unchanged by batching.
        assert detect.total_cost_seconds == pytest.approx(7 * 0.5)
        assert engine.busy_seconds == pytest.approx(7 * 0.5)

    def test_batched_matches_unbatched_outputs(self):
        _, _, batched = self._run_engine(batch_size=4)
        _, _, unbatched = self._run_engine(batch_size=1)
        assert [(task.frame_index, task.labels) for task in batched["sink"]] == \
            [(task.frame_index, task.labels) for task in unbatched["sink"]]

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(DataflowError):
            DetectObjectsOperator("bad", ConstantDetector(), batch_size=0)
