"""Tests for the numpy NN engine, YoloLite, the oracle and partitioning."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn import (CLOUD_DEVICE, EDGE_DEVICE, Conv2D, Dense, DeviceSpec, Flatten,
                      GlobalAveragePool, MaxPool2D, ModelProfiler,
                      NeurosurgeonPartitioner, OracleDetector, ConstantDetector,
                      ReLU, SequentialModel, Softmax, build_yolo_lite, classify_frame,
                      detect_many, model_size_bytes, preprocess_frame)
from repro.video.events import EventTimeline


class TestLayers:
    def test_conv_shapes_and_flops(self):
        conv = Conv2D(3, 8, kernel_size=3, padding="same", name="c")
        assert conv.output_shape((3, 16, 16)) == (8, 16, 16)
        assert conv.num_parameters == 3 * 8 * 9 + 8
        assert conv.flops((3, 16, 16)) == 8 * 16 * 16 * 3 * 9
        valid = Conv2D(3, 8, kernel_size=3, padding="valid")
        assert valid.output_shape((3, 16, 16)) == (8, 14, 14)

    def test_conv_identity_kernel(self):
        conv = Conv2D(1, 1, kernel_size=3, padding="same")
        conv.weights[:] = 0.0
        conv.weights[0, 0, 1, 1] = 1.0
        conv.bias[:] = 0.0
        inputs = np.random.default_rng(0).normal(size=(1, 8, 8))
        assert np.allclose(conv.forward(inputs), inputs, atol=1e-12)

    def test_relu_and_softmax(self):
        assert np.array_equal(ReLU().forward(np.array([-1.0, 2.0])), [0.0, 2.0])
        probabilities = Softmax().forward(np.array([1.0, 1.0, 1.0, 1.0]))
        assert probabilities.sum() == pytest.approx(1.0)
        assert np.allclose(probabilities, 0.25)

    def test_maxpool(self):
        plane = np.arange(16.0).reshape(1, 4, 4)
        pooled = MaxPool2D(2).forward(plane)
        assert pooled.shape == (1, 2, 2)
        assert pooled[0, 0, 0] == 5.0 and pooled[0, 1, 1] == 15.0

    def test_global_average_pool_and_flatten(self):
        plane = np.ones((3, 4, 4))
        assert np.allclose(GlobalAveragePool().forward(plane), 1.0)
        assert Flatten().forward(plane).shape == (48,)

    def test_dense(self):
        dense = Dense(4, 2)
        dense.weights[:] = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0]])
        dense.bias[:] = np.array([1.0, -1.0])
        assert np.allclose(dense.forward(np.array([2.0, 3.0, 0, 0])), [3.0, 2.0])
        with pytest.raises(ModelError):
            dense.forward(np.zeros(5))

    def test_invalid_layer_parameters(self):
        with pytest.raises(ModelError):
            Conv2D(0, 4)
        with pytest.raises(ModelError):
            Dense(4, 0)


class TestSequentialModel:
    def test_shape_chain_validated_eagerly(self):
        with pytest.raises(ModelError):
            SequentialModel([Conv2D(3, 4), Dense(10, 2)], input_shape=(3, 8, 8))

    def test_forward_and_ranges(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25)
        tensor = np.random.default_rng(0).normal(size=model.input_shape)
        full = model.forward(tensor)
        split = model.num_layers // 2
        partial = model.forward_range(tensor, 0, split)
        resumed = model.forward_range(partial, split, model.num_layers)
        assert np.allclose(full, resumed, atol=1e-9)
        assert full.shape == model.output_shape
        assert full.sum() == pytest.approx(1.0)

    def test_summary_consistency(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25)
        summary = model.summary()
        assert len(summary) == model.num_layers
        assert sum(entry.num_parameters for entry in summary) == model.num_parameters
        assert model.total_flops() > 0

    def test_invalid_range(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25)
        with pytest.raises(ModelError):
            model.forward_range(np.zeros(model.input_shape), 3, 1)


class TestYoloLite:
    def test_classifier_outputs_known_label(self, rng):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.5)
        frame = rng.integers(0, 255, size=(60, 80), dtype=np.uint8)
        label, probabilities = classify_frame(model, frame)
        assert label in model.classes
        assert probabilities.shape == (len(model.classes),)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_preprocess_shape(self, rng):
        tensor = preprocess_frame(rng.integers(0, 255, size=(45, 77, 3)), (32, 32))
        assert tensor.shape == (1, 32, 32)

    def test_deterministic_weights(self):
        a = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25, seed=3)
        b = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25, seed=3)
        assert np.array_equal(a.layers[0].weights, b.layers[0].weights)
        assert model_size_bytes(a) == a.num_parameters * 4

    def test_invalid_configuration(self):
        with pytest.raises(ModelError):
            build_yolo_lite(classes=("only-one",))
        with pytest.raises(ModelError):
            build_yolo_lite(input_size=(8, 8))


class TestOracle:
    def _timeline(self):
        labels = [set()] * 5 + [{"car"}] * 5 + [set()] * 5
        return EventTimeline.from_frame_labels(labels)

    def test_perfect_oracle(self):
        timeline = self._timeline()
        oracle = OracleDetector(timeline)
        assert oracle.detect(7) == frozenset({"car"})
        assert oracle.detect(2) == frozenset()
        assert detect_many(oracle, [0, 7]) == {0: frozenset(), 7: frozenset({"car"})}

    def test_error_rate_perturbs_some_frames(self):
        timeline = self._timeline()
        noisy = OracleDetector(timeline, error_rate=1.0, label_pool={"car", "bus"})
        wrong = sum(noisy.detect(i) != timeline.labels_at(i) for i in range(15))
        assert wrong >= 10

    def test_error_rate_validation(self):
        with pytest.raises(ModelError):
            OracleDetector(self._timeline(), error_rate=2.0)

    def test_constant_detector(self):
        detector = ConstantDetector({"person"})
        assert detector.detect(0) == frozenset({"person"})


class TestProfilerAndPartitioning:
    def test_analytical_profile_scales_with_device(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25)
        profiler = ModelProfiler(model)
        edge = profiler.total_compute_ms(EDGE_DEVICE)
        cloud = profiler.total_compute_ms(CLOUD_DEVICE)
        assert edge > cloud
        table = profiler.profile_table()
        assert len(table) == model.num_layers
        assert all("edge_ms" in row and "cloud_ms" in row for row in table)

    def test_measured_profile_runs(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25)
        profiles = ModelProfiler(model).measured_profile(repetitions=1)
        assert len(profiles) == model.num_layers
        assert all(profile.compute_ms >= 0 for profile in profiles)

    def test_partitioner_prefers_cloud_on_fast_network(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.5)
        decision = NeurosurgeonPartitioner(model).decide(bandwidth_mbps=10_000.0)
        assert decision.best.total_ms <= decision.edge_only_ms + 1e-9
        assert decision.best.split_index < model.num_layers

    def test_partitioner_prefers_edge_on_slow_network(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.5)
        decision = NeurosurgeonPartitioner(model).decide(bandwidth_mbps=0.01)
        # On a near-dead link the best plan keeps (almost) everything on the
        # edge so that only the tiny final vector crosses the network.
        assert decision.best.split_index >= model.num_layers - 2
        assert decision.best.transfer_bytes <= 4096

    def test_candidate_count_and_validation(self):
        model = build_yolo_lite(input_size=(32, 32), width_multiplier=0.25)
        partitioner = NeurosurgeonPartitioner(model)
        decision = partitioner.decide(bandwidth_mbps=30.0)
        assert len(decision.candidates) == model.num_layers + 1
        assert decision.speedup_over_edge >= 1.0 or decision.speedup_over_cloud >= 1.0
        with pytest.raises(ModelError):
            partitioner.evaluate_split(model.num_layers + 1, 30.0)
        with pytest.raises(ModelError):
            DeviceSpec(name="bad", effective_gflops=0.0)
