"""Fleet scale-out: transport/steal/region parity, steal replay, merges.

The contract is the same 1e-6 one the legacy parallel path pins: for any
combination of payload transport, work stealing and replay regions, the
scale-out fleet produces a report with no parity mismatches against the
single-process reference.  On top of that the steal log must be a dense,
replayable record of who simulated what, and the hierarchical region
merge must reproduce the flat tie-chain sort exactly.
"""

import json

import numpy as np
import pytest

from repro.cluster.fleet import CameraJob, FleetOrchestrator
from repro.config import (TRANSPORT_PICKLE, TRANSPORT_SHM, SystemConfig)
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, WorkerKill
from repro.parallel import (StealLog, hierarchical_replay_order,
                            shm_available, stealing_available)

TOLERANCE = 1e-6

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="no shared memory here")
needs_steal = pytest.mark.skipif(not stealing_available(),
                                 reason="no advisory file locks here")


def make_jobs(count, heterogeneous=True):
    """A small fleet of jobs (optionally all identical to force float ties)."""
    jobs = []
    for index in range(count):
        spread = (index % 5) if heterogeneous else 0
        jobs.append(CameraJob(
            camera=f"cam-{index:02d}", video=f"video-{spread}",
            num_frames=300 + spread * 30, frames_for_inference=12 + spread,
            edge_seconds=0.7 + spread * 0.13, cloud_seconds=0.4 + spread * 0.05,
            camera_edge_bytes=800_000 + spread * 1013,
            edge_cloud_bytes=250_000 + spread * 577))
    return jobs


def scale_config(transport=TRANSPORT_PICKLE, stealing=False, regions=1):
    return SystemConfig(fleet_transport=transport, fleet_stealing=stealing,
                        fleet_regions=regions)


def run_fleet(jobs, *, workers=1, config=None, num_edges=5,
              policy="least-loaded", jitter=1.0, seed=7, replay=None):
    orchestrator = FleetOrchestrator(
        jobs, num_edge_servers=num_edges, policy=policy,
        arrival_jitter_seconds=jitter, seed=seed, fleet_workers=workers,
        config=config if config is not None else SystemConfig())
    if replay is not None:
        orchestrator.replay_steal_log = replay
    return orchestrator, orchestrator.run()


def assert_reports_equal(reference, candidate):
    assert reference.parity_mismatches(candidate, TOLERANCE) == []


class TestScaleOutParity:
    @pytest.mark.parametrize("transport", [TRANSPORT_PICKLE,
                                           pytest.param(TRANSPORT_SHM,
                                                        marks=needs_shm)])
    @pytest.mark.parametrize("stealing", [False,
                                          pytest.param(True,
                                                       marks=needs_steal)])
    @pytest.mark.parametrize("regions", [1, 2, 0])
    def test_matrix_matches_single_process(self, transport, stealing,
                                           regions):
        jobs = make_jobs(14)
        config = scale_config(transport, stealing, regions)
        _, serial = run_fleet(jobs, workers=1, config=config)
        _, parallel = run_fleet(jobs, workers=3, config=config)
        assert_reports_equal(serial, parallel)

    @needs_shm
    def test_homogeneous_jobs_force_ties(self):
        """Identical jobs + zero jitter: every tie-break level is exercised."""
        jobs = make_jobs(12, heterogeneous=False)
        config = scale_config(TRANSPORT_SHM, stealing_available(), regions=3)
        _, serial = run_fleet(jobs, workers=1, config=config, jitter=0.0,
                              policy="round-robin")
        _, parallel = run_fleet(jobs, workers=3, config=config, jitter=0.0,
                                policy="round-robin")
        assert_reports_equal(serial, parallel)

    def test_single_worker_scaleout_path(self):
        """workers such that the shard runs inline (no pool) still agree."""
        jobs = make_jobs(9)
        config = scale_config(TRANSPORT_PICKLE, False, regions=2)
        _, serial = run_fleet(jobs, workers=1, config=SystemConfig())
        # regions > 1 routes through the scale-out path even on pickle.
        _, parallel = run_fleet(jobs, workers=2, config=config)
        assert_reports_equal(serial, parallel)


@needs_steal
class TestStealLog:
    def _steal_run(self, jobs, **kwargs):
        config = scale_config(TRANSPORT_PICKLE, stealing=True)
        orchestrator, report = run_fleet(jobs, workers=3, config=config,
                                         **kwargs)
        log = orchestrator.last_steal_log
        assert log is not None
        return report, log

    def test_log_is_dense_and_covers_every_edge(self):
        jobs = make_jobs(13)
        _, log = self._steal_run(jobs)
        sequences = sorted(record.claim_seq for record in log.records)
        assert sequences == list(range(len(log.records)))
        claimed_edges = sorted(record.edge_index for record in log.records)
        assert claimed_edges == list(range(5))
        assert all(0 <= record.worker_slot < log.num_workers
                   for record in log.records)

    def test_json_round_trip(self):
        _, log = self._steal_run(make_jobs(11))
        clone = StealLog.from_json(log.to_json())
        assert clone == log
        assert json.loads(log.to_json())["num_workers"] == log.num_workers

    def test_replay_reproduces_report_and_echoes_log(self):
        jobs = make_jobs(13)
        recorded_report, log = self._steal_run(jobs)
        config = scale_config(TRANSPORT_PICKLE, stealing=True)
        replayer, replayed = run_fleet(jobs, workers=3, config=config,
                                       replay=StealLog.from_json(log.to_json()))
        assert_reports_equal(recorded_report, replayed)
        assert replayer.last_steal_log == log

    def test_replay_is_deterministic_without_locks(self):
        """A replayed assignment never touches the claim board, so two
        replays of the same log are identical run to run."""
        jobs = make_jobs(10)
        _, log = self._steal_run(jobs)
        config = scale_config(TRANSPORT_PICKLE, stealing=True)
        first, _ = run_fleet(jobs, workers=3, config=config, replay=log)
        second, _ = run_fleet(jobs, workers=3, config=config, replay=log)
        assert first.last_steal_log == second.last_steal_log == log


class TestHierarchicalReplayOrder:
    def _chain_sort(self, wan, edge, lan, offsets):
        return sorted(range(len(wan)),
                      key=lambda i: (wan[i], edge[i], lan[i], offsets[i], i))

    def _columns(self, count, ties=False):
        # Deterministic pseudo-data; with ties=True whole chains collide.
        base = np.arange(count, dtype=np.float64)
        if ties:
            wan = np.repeat(5.0, count)
            edge = (base % 3).astype(np.float64)
            lan = np.repeat(1.0, count)
            offsets = (base % 2).astype(np.float64)
        else:
            wan = (base * 7.3) % 11.0
            edge = (base * 3.1) % 5.0
            lan = (base * 1.7) % 3.0
            offsets = base * 0.25
        return wan, edge, lan, offsets

    @pytest.mark.parametrize("ties", [False, True])
    @pytest.mark.parametrize("regions", [1, 2, 3, 6])
    def test_equals_flat_sort(self, ties, regions):
        count, num_edges = 24, 6
        wan, edge, lan, offsets = self._columns(count, ties)
        job_edges = [index % num_edges for index in range(count)]
        order = hierarchical_replay_order(job_edges, wan, edge, lan, offsets,
                                          num_edges, regions)
        assert order == self._chain_sort(wan, edge, lan, offsets)

    def test_region_count_is_clamped(self):
        wan, edge, lan, offsets = self._columns(8)
        job_edges = [index % 4 for index in range(8)]
        flat = self._chain_sort(wan, edge, lan, offsets)
        # More regions than edges, and zero/negative regions, both clamp.
        for regions in (99, 0, -3):
            assert hierarchical_replay_order(
                job_edges, wan, edge, lan, offsets, 4, regions) == flat

    def test_empty_input(self):
        empty = np.array([], dtype=np.float64)
        assert hierarchical_replay_order([], empty, empty, empty, empty,
                                         4, 2) == []


class TestFaultRecoveryParity:
    @pytest.mark.parametrize("transport", [TRANSPORT_PICKLE,
                                           pytest.param(TRANSPORT_SHM,
                                                        marks=needs_shm)])
    @pytest.mark.parametrize("stealing", [False,
                                          pytest.param(True,
                                                       marks=needs_steal)])
    def test_worker_kill_recovers_bit_identical(self, transport, stealing):
        jobs = make_jobs(12)
        _, serial = run_fleet(jobs, workers=1, config=SystemConfig())
        config = scale_config(transport, stealing, regions=2)
        orchestrator = FleetOrchestrator(
            jobs, num_edge_servers=5, policy="least-loaded",
            arrival_jitter_seconds=1.0, seed=7, fleet_workers=3,
            config=config, faults=FaultPlan(specs=(WorkerKill(edge_index=1),)))
        recovered = orchestrator.run()
        assert_reports_equal(serial, recovered)


class TestConfigValidation:
    def test_bad_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(fleet_transport="smoke-signals")

    def test_negative_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(fleet_regions=-1)

    def test_auto_knobs_accepted(self):
        config = SystemConfig(fleet_transport="auto", fleet_regions=0,
                              fleet_stealing=True)
        assert config.fleet_regions == 0
