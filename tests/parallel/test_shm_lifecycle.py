"""Shared-memory hygiene: no segment outlives the run that created it.

Leaked POSIX shared memory persists until reboot, so every exit path —
clean runs, parent exceptions, and worker crashes that break the pool —
must leave both the transport's own registry and ``/dev/shm`` free of
``repro_shm*`` segments.
"""

import os

import pytest

from repro.cluster.fleet import FleetOrchestrator
from repro.config import TRANSPORT_SHM, SystemConfig
from repro.faults import FaultPlan, WorkerKill
from repro.parallel import active_segment_names, shm_available, transport
from repro.parallel.transport import SEGMENT_PREFIX

from test_fleet_scaleout import make_jobs, run_fleet, scale_config

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="no shared memory here")

DEV_SHM = "/dev/shm"


def shm_files():
    """``repro_shm*`` entries visible in /dev/shm (empty off-Linux)."""
    try:
        entries = os.listdir(DEV_SHM)
    except OSError:
        return []
    return sorted(name for name in entries if SEGMENT_PREFIX in name)


@pytest.fixture(autouse=True)
def assert_no_preexisting_leak():
    assert not active_segment_names()
    before = shm_files()
    yield
    assert not active_segment_names()
    assert shm_files() == before


class TestLifecycle:
    def test_clean_fleet_run_leaves_nothing(self):
        jobs = make_jobs(10)
        config = scale_config(TRANSPORT_SHM)
        _, report = run_fleet(jobs, workers=3, config=config)
        assert report.num_cameras == len(jobs)

    def test_parent_exception_inside_context(self):
        class Boom(RuntimeError):
            pass

        with pytest.raises(Boom):
            with transport(TRANSPORT_SHM) as channel:
                channel.allocate({"values": ("float64", (128,))})
                assert active_segment_names()
                raise Boom()

    def test_worker_kill_broken_pool_recovery(self):
        """A worker dying mid-task breaks the pool; the parent redoes the
        lost work inline and must still tear every segment down."""
        jobs = make_jobs(10)
        orchestrator = FleetOrchestrator(
            jobs, num_edge_servers=4, policy="least-loaded",
            arrival_jitter_seconds=1.0, seed=7, fleet_workers=3,
            config=scale_config(TRANSPORT_SHM),
            faults=FaultPlan(specs=(WorkerKill(edge_index=2),)))
        report = orchestrator.run()
        _, reference = run_fleet(jobs, workers=1, num_edges=4,
                                 config=SystemConfig())
        assert reference.parity_mismatches(report, 1e-6) == []

    def test_repeated_runs_do_not_accumulate(self):
        jobs = make_jobs(6)
        config = scale_config(TRANSPORT_SHM)
        for _ in range(3):
            run_fleet(jobs, workers=2, config=config)
            assert not active_segment_names()
