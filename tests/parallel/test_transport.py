"""Shard transport: handle round-trips, SHM lifecycle, fallback resolution."""

import multiprocessing
import pickle

import numpy as np
import pytest

from repro.config import (TRANSPORT_AUTO, TRANSPORT_MODES, TRANSPORT_PICKLE,
                          TRANSPORT_SHM, validate_transport)
from repro.errors import ConfigurationError
from repro.parallel import (PickleTransport, SharedMemoryTransport,
                            active_segment_names, make_transport, open_handle,
                            resolve_transport, shm_available, transport)


def sample_arrays():
    return {
        "offsets": np.arange(5, dtype=np.float64) * 1.5,
        "bytes": np.array([10, 20, 30], dtype=np.int64),
    }


def assert_bundle_equal(arrays, expected):
    assert set(arrays) == set(expected)
    for name, array in expected.items():
        np.testing.assert_array_equal(arrays[name], array)
        assert arrays[name].dtype == array.dtype


class TestModeValidation:
    def test_known_modes(self):
        for mode in TRANSPORT_MODES:
            validate_transport(mode)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_transport("carrier-pigeon")
        with pytest.raises(ConfigurationError):
            make_transport("carrier-pigeon")

    def test_resolution(self):
        assert resolve_transport(TRANSPORT_PICKLE) == TRANSPORT_PICKLE
        if shm_available():
            assert resolve_transport(TRANSPORT_SHM) == TRANSPORT_SHM
            assert resolve_transport(TRANSPORT_AUTO) == TRANSPORT_SHM
        else:
            assert resolve_transport(TRANSPORT_AUTO) == TRANSPORT_PICKLE

    def test_make_transport_types(self):
        assert isinstance(make_transport(TRANSPORT_PICKLE), PickleTransport)
        if shm_available():
            assert isinstance(make_transport(TRANSPORT_SHM),
                              SharedMemoryTransport)


class TestPickleTransport:
    def test_publish_round_trip(self):
        expected = sample_arrays()
        with transport(TRANSPORT_PICKLE) as channel:
            assert not channel.is_shared
            handle = channel.publish(expected)
            assert handle.is_inline
            with open_handle(handle) as arrays:
                assert_bundle_equal(arrays, expected)

    def test_handle_pickles(self):
        with transport(TRANSPORT_PICKLE) as channel:
            handle = channel.publish(sample_arrays())
            clone = pickle.loads(pickle.dumps(handle))
            with open_handle(clone) as arrays:
                assert_bundle_equal(arrays, sample_arrays())

    def test_attach_returns_arrays(self):
        with transport(TRANSPORT_PICKLE) as channel:
            handle = channel.publish(sample_arrays())
            assert_bundle_equal(channel.attach(handle), sample_arrays())


@pytest.mark.skipif(not shm_available(), reason="no shared memory here")
class TestSharedMemoryTransport:
    def test_publish_round_trip_and_cleanup(self):
        expected = sample_arrays()
        with transport(TRANSPORT_SHM) as channel:
            assert channel.is_shared
            handle = channel.publish(expected)
            assert not handle.is_inline
            with open_handle(handle) as arrays:
                assert_bundle_equal(arrays, expected)
            assert active_segment_names()
        assert not active_segment_names()

    def test_allocate_then_write_then_attach(self):
        with transport(TRANSPORT_SHM) as channel:
            handle = channel.allocate({"values": ("float64", (4,))})
            with open_handle(handle) as arrays:
                arrays["values"][:] = [1.0, 2.0, 3.0, 4.0]
            read_back = channel.attach(handle)
            np.testing.assert_array_equal(read_back["values"],
                                          [1.0, 2.0, 3.0, 4.0])

    def test_handle_pickles_and_opens_in_child(self):
        expected = sample_arrays()
        context = multiprocessing.get_context()
        with transport(TRANSPORT_SHM) as channel:
            handle = channel.publish(expected)
            with context.Pool(1) as pool:
                total = pool.apply(_child_sum, (handle,))
            assert total == pytest.approx(
                float(sum(array.sum() for array in expected.values())))

    def test_cleanup_survives_live_views(self):
        # numpy views exported from the mapped buffer normally make
        # SharedMemory.close() raise BufferError; cleanup must still
        # unlink the segment (no /dev/shm leak) without raising.
        channel = make_transport(TRANSPORT_SHM)
        handle = channel.publish(sample_arrays())
        arrays = channel.attach(handle)
        assert arrays["offsets"].shape == (5,)
        channel.cleanup()
        assert not active_segment_names()


def _child_sum(handle):
    with open_handle(handle) as arrays:
        return float(sum(array.sum() for array in arrays.values()))
