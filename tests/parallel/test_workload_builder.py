"""Parallel workload builder: parity, byte-identity, degradation paths.

Acceptance contract (ISSUE 4): ``build_workers > 1`` must produce
byte-identical cache artifacts and value-identical workload objects to the
serial path, with results assembled deterministically by dataset order
regardless of worker scheduling; unavailable pools and disabled caches
degrade to the serial path rather than failing.
"""

import hashlib

import pytest

from repro.config import SystemConfig
from repro.datasets import diskcache
from repro.errors import ConfigurationError
from repro.experiments import ExperimentConfig
from repro.experiments.common import clear_prepared_cache
from repro.parallel import WorkloadBuilder
from repro.parallel import workloads as workloads_module
from repro.perf import get_recorder

QUICK = ExperimentConfig(duration_seconds=6.0, render_scale=0.05,
                         datasets=("jackson_square", "coral_reef"))


def workload_fingerprint(workload):
    return (workload.name, workload.num_frames, workload.semantic_bytes,
            workload.default_bytes, workload.semantic_iframe_bytes,
            tuple(workload.semantic_samples), tuple(workload.mse_samples),
            tuple(workload.uniform_samples), workload.resized_frame_bytes,
            workload.timeline)


def dataset_fingerprint(prepared):
    import numpy as np
    return (prepared.name,
            hashlib.sha256(
                np.stack(prepared.instance.video.as_arrays()).tobytes()
            ).hexdigest(),
            tuple(prepared.activities), prepared.timeline)


@pytest.fixture()
def fresh_state():
    clear_prepared_cache()
    get_recorder().reset()
    yield
    clear_prepared_cache()
    get_recorder().reset()


def build_in(tmp_path, subdir, build_workers):
    """Cold-build the QUICK corpus in its own cache dir; return results."""
    cache = tmp_path / subdir
    with diskcache.temporary_cache_dir(cache):
        clear_prepared_cache()
        built = WorkloadBuilder(
            QUICK, build_workers=build_workers).build_workloads()
    clear_prepared_cache()
    return built, cache


class TestParallelSerialParity:
    def test_byte_identical_artifacts_and_equal_workloads(self, tmp_path,
                                                          fresh_state):
        serial, serial_cache = build_in(tmp_path, "serial", 1)
        get_recorder().reset()
        parallel, parallel_cache = build_in(tmp_path, "parallel", 2)

        assert [w.name for w in parallel] == [w.name for w in serial]
        for left, right in zip(serial, parallel):
            assert workload_fingerprint(left) == workload_fingerprint(right)

        serial_tree = diskcache.tree_digest(serial_cache)
        parallel_tree = diskcache.tree_digest(parallel_cache)
        assert sorted(serial_tree) == sorted(parallel_tree)
        assert serial_tree == parallel_tree  # byte-identical bundles
        # 2 datasets x (prepared-dataset + workload) x (.npz + .json)
        assert len(serial_tree) == 8

    def test_parent_process_does_not_render_in_parallel_mode(self, tmp_path,
                                                             fresh_state):
        _, _ = build_in(tmp_path, "parallel-only", 2)
        sections = get_recorder().sections
        # The renders/tunes happened in the worker processes; the parent
        # only fanned out and then assembled from the disk artifacts.
        assert "workload.parallel_warm" in sections
        assert "dataset.render" not in sections
        assert "workload.build" not in sections
        assert "workload.disk_hit" in sections

    def test_prepare_datasets_parity(self, tmp_path, fresh_state):
        with diskcache.temporary_cache_dir(tmp_path / "ds-serial"):
            clear_prepared_cache()
            serial = WorkloadBuilder(QUICK, build_workers=1).prepare_datasets()
        with diskcache.temporary_cache_dir(tmp_path / "ds-parallel"):
            clear_prepared_cache()
            parallel = WorkloadBuilder(
                QUICK, build_workers=2).prepare_datasets()
        assert list(serial) == list(QUICK.datasets)
        assert list(parallel) == list(serial)
        for name in serial:
            assert (dataset_fingerprint(serial[name])
                    == dataset_fingerprint(parallel[name]))

    def test_dataset_splits_matrix(self, tmp_path, fresh_state):
        config = ExperimentConfig(duration_seconds=6.0, render_scale=0.05,
                                  datasets=("jackson_square",))
        with diskcache.temporary_cache_dir(tmp_path / "matrix"):
            clear_prepared_cache()
            matrix = WorkloadBuilder(config, build_workers=2).\
                prepare_dataset_splits(splits=("train", "test"))
        assert set(matrix) == {("jackson_square", "train"),
                               ("jackson_square", "test")}
        # Distinct splits are distinct clips (split-derived seeds).
        assert (dataset_fingerprint(matrix[("jackson_square", "train")])
                != dataset_fingerprint(matrix[("jackson_square", "test")]))


class TestBudgetedBuild:
    def test_build_settles_under_the_budget_after_pins_release(
            self, tmp_path, fresh_state, monkeypatch):
        """During the build every corpus key is pinned (stores cannot
        evict the working set); once the builder's pin scope closes a
        settle sweep brings the cache back under ``REPRO_CACHE_MAX_BYTES``
        even when the corpus itself exceeds it."""
        budget = 400_000  # well below the two-dataset working set
        monkeypatch.setenv(diskcache.CACHE_MAX_BYTES_ENV, str(budget))
        with diskcache.temporary_cache_dir(tmp_path / "budgeted"):
            clear_prepared_cache()
            built = WorkloadBuilder(QUICK, build_workers=1).build_workloads()
            assert [w.name for w in built] == list(QUICK.datasets)
            assert diskcache.cache_total_bytes() <= budget
        assert not diskcache.pinned_entries()


class TestDegradationPaths:
    def test_disabled_cache_falls_back_to_serial(self, tmp_path, fresh_state,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", "0")
        with diskcache.temporary_cache_dir(tmp_path / "disabled"):
            built = WorkloadBuilder(QUICK, build_workers=4).build_workloads()
        assert [w.name for w in built] == list(QUICK.datasets)
        # No disk hand-off happened: the parent built everything itself.
        assert "workload.parallel_warm" not in get_recorder().sections
        assert "workload.build" in get_recorder().sections

    def test_broken_pool_falls_back_to_serial(self, tmp_path, fresh_state,
                                              monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no process pools in this sandbox")
        monkeypatch.setattr(workloads_module, "ProcessPoolExecutor",
                            broken_pool)
        with diskcache.temporary_cache_dir(tmp_path / "broken"):
            clear_prepared_cache()
            built = WorkloadBuilder(QUICK, build_workers=2).build_workloads()
        assert [w.name for w in built] == list(QUICK.datasets)
        assert "workload.build" in get_recorder().sections

    def test_single_task_skips_the_pool(self, tmp_path, fresh_state,
                                        monkeypatch):
        def exploding_pool(*args, **kwargs):
            raise AssertionError("pool must not be created for one task")
        monkeypatch.setattr(workloads_module, "ProcessPoolExecutor",
                            exploding_pool)
        config = ExperimentConfig(duration_seconds=6.0, render_scale=0.05,
                                  datasets=("jackson_square",))
        with diskcache.temporary_cache_dir(tmp_path / "single"):
            clear_prepared_cache()
            built = WorkloadBuilder(config, build_workers=8).build_workloads()
        assert [w.name for w in built] == ["jackson_square"]

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadBuilder(QUICK, build_workers=-1)
        with pytest.raises(ConfigurationError):
            SystemConfig(build_workers=-1)

    def test_zero_workers_means_auto(self):
        from repro.config import available_cpu_count
        expected = available_cpu_count()
        assert WorkloadBuilder(QUICK, build_workers=0).build_workers == expected
        assert SystemConfig(build_workers=0).build_workers == expected


class TestWorkerKillRecovery:
    """ISSUE: the fault plane reaches the workload builder — a killed
    pool worker must not change a single byte of the built corpus."""

    def build_with_faults(self, tmp_path, subdir, build_workers, faults):
        cache = tmp_path / subdir
        with diskcache.temporary_cache_dir(cache):
            clear_prepared_cache()
            builder = WorkloadBuilder(QUICK, build_workers=build_workers,
                                      faults=faults)
            built = builder.build_workloads()
        clear_prepared_cache()
        return built, cache, builder

    def test_killed_worker_recovers_bit_identically(self, tmp_path,
                                                    fresh_state):
        from repro.faults import FaultPlan, WorkerKill
        serial, serial_cache = build_in(tmp_path, "serial", 1)
        get_recorder().reset()
        # The worker picking up task 0 dies hard (os._exit, no cleanup,
        # no cache write) before building anything.
        killed, killed_cache, builder = self.build_with_faults(
            tmp_path, "killed", 2,
            FaultPlan(specs=(WorkerKill(edge_index=0),)))
        assert builder.tasks_poisoned == 1
        assert [w.name for w in killed] == [w.name for w in serial]
        for left, right in zip(serial, killed):
            assert workload_fingerprint(left) == workload_fingerprint(right)
        # The artifacts the parent rebuilt are byte-identical on disk.
        assert diskcache.tree_digest(serial_cache) == (
            diskcache.tree_digest(killed_cache))

    def test_serial_path_ignores_worker_kills(self, tmp_path, fresh_state):
        from repro.faults import FaultPlan, WorkerKill
        plain, plain_cache = build_in(tmp_path, "plain", 1)
        killed, killed_cache, builder = self.build_with_faults(
            tmp_path, "serial-killed", 1,
            FaultPlan(specs=(WorkerKill(edge_index=0),)))
        # The poison is marked but never honoured in-process: the parent
        # must not os._exit itself.
        assert builder.tasks_poisoned == 1
        for left, right in zip(plain, killed):
            assert workload_fingerprint(left) == workload_fingerprint(right)
        assert diskcache.tree_digest(plain_cache) == (
            diskcache.tree_digest(killed_cache))

    def test_out_of_range_kill_index_is_a_noop(self, tmp_path, fresh_state):
        from repro.faults import FaultPlan, WorkerKill
        built, _, builder = self.build_with_faults(
            tmp_path, "oob", 2, FaultPlan(specs=(WorkerKill(edge_index=99),)))
        assert builder.tasks_poisoned == 0
        assert [w.name for w in built] == list(QUICK.datasets)

    def test_no_faults_means_no_poison(self, tmp_path, fresh_state):
        builder = WorkloadBuilder(QUICK, build_workers=1)
        assert builder.tasks_poisoned == 0
        tasks = [workloads_module.BuildTask(
            artifact=workloads_module.WORKLOAD_ARTIFACT,
            name="jackson_square", split="full", config=QUICK)]
        assert builder._poison(tasks) == tasks


class TestBuildTaskPlumbing:
    def test_system_config_supplies_the_default_worker_count(self):
        system_config = SystemConfig(build_workers=3)
        builder = WorkloadBuilder(QUICK, system_config)
        assert builder.build_workers == 3
        assert WorkloadBuilder(QUICK, system_config,
                               build_workers=1).build_workers == 1

    def test_task_cache_entries_cover_both_artifacts(self):
        tasks = [workloads_module.BuildTask(
            artifact=workloads_module.WORKLOAD_ARTIFACT,
            name="jackson_square", split="full", config=QUICK)]
        entries = workloads_module.task_cache_entries(tasks)
        kinds = [kind for kind, _ in entries]
        assert kinds == ["prepared-dataset", "workload"]
        # Pinning the active build protects these exact entries.
        with diskcache.pinned(entries):
            assert set(entries) <= diskcache.pinned_entries()
        assert not (set(entries) & diskcache.pinned_entries())

    def test_unknown_artifact_rejected(self):
        task = workloads_module.BuildTask(
            artifact="bogus", name="jackson_square", split="full",
            config=QUICK)
        with pytest.raises(ConfigurationError):
            workloads_module.execute_build_task(task)
