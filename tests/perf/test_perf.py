"""Tests for the perf instrumentation subsystem and its engine wiring."""

import json

import pytest

from repro.cluster.fleet import CameraJob, FleetOrchestrator
from repro.dataflow.engine import DataflowEngine
from repro.dataflow.operator import FunctionOperator, SinkOperator, SourceOperator
from repro.dataflow.scheduler import EventScheduler, ScheduledEngine
from repro.perf import (BenchReport, PerfRecorder, Stopwatch, get_recorder,
                        load_bench_runs, record_value, section)


class TestStopwatch:
    def test_start_stop(self):
        watch = Stopwatch().start()
        assert watch.running
        elapsed = watch.stop()
        assert elapsed >= 0.0
        assert watch.elapsed_seconds == elapsed
        assert not watch.running

    def test_context_manager(self):
        with Stopwatch() as watch:
            pass
        assert watch.elapsed_seconds >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()


class TestPerfRecorder:
    def test_sections_accumulate(self):
        recorder = PerfRecorder()
        with recorder.section("stage"):
            pass
        with recorder.section("stage"):
            pass
        stats = recorder.sections["stage"]
        assert stats.calls == 2
        assert stats.total_seconds >= 0.0
        assert stats.min_seconds <= stats.max_seconds
        assert stats.mean_seconds == pytest.approx(stats.total_seconds / 2)

    def test_counters(self):
        recorder = PerfRecorder()
        recorder.count("frames", 5)
        recorder.count("frames")
        assert recorder.counters["frames"].value == 6.0

    def test_summary_and_reset(self):
        recorder = PerfRecorder()
        with recorder.section("a"):
            pass
        summary = recorder.summary()
        assert summary["a"]["calls"] == 1.0
        recorder.reset()
        assert recorder.sections == {} and recorder.counters == {}

    def test_global_recorder_helpers(self):
        baseline = get_recorder().counters.get("test-counter")
        baseline_value = baseline.value if baseline else 0.0
        record_value("test-counter", 2)
        with section("test-section"):
            pass
        assert get_recorder().counters["test-counter"].value == baseline_value + 2
        assert get_recorder().sections["test-section"].calls >= 1


class TestBenchReport:
    def test_record_and_speedup(self):
        report = BenchReport("unit", context={"scale": 0.1})
        report.record("encode", 0.5, "seconds", frames=10)
        entry = report.record_speedup("codec", baseline_seconds=1.0,
                                      optimised_seconds=0.25)
        assert entry.value == pytest.approx(4.0)
        assert report.value_of("codec.baseline") == 1.0
        assert report.value_of("codec.speedup") == pytest.approx(4.0)
        with pytest.raises(KeyError):
            report.value_of("missing")

    def test_write_appends_runs(self, tmp_path):
        path = str(tmp_path / "BENCH_unit.json")
        first = BenchReport("unit")
        first.record("metric", 1.0)
        assert first.write(path) == path
        second = BenchReport("unit")
        second.record("metric", 2.0)
        second.write(path)
        runs = load_bench_runs(path)
        assert len(runs) == 2
        assert runs[0]["entries"][0]["value"] == 1.0
        assert runs[1]["entries"][0]["value"] == 2.0
        assert runs[1]["report"] == "unit"

    def test_write_replaces_corrupt_files(self, tmp_path):
        path = tmp_path / "BENCH_unit.json"
        path.write_text("{not json")
        report = BenchReport("unit")
        report.record("metric", 3.0)
        report.write(str(path))
        assert len(load_bench_runs(str(path))) == 1

    def test_write_caps_history(self, tmp_path):
        path = str(tmp_path / "BENCH_unit.json")
        for index in range(5):
            report = BenchReport("unit")
            report.record("metric", float(index))
            report.write(path, max_runs=3)
        runs = load_bench_runs(path)
        assert len(runs) == 3
        assert runs[-1]["entries"][0]["value"] == 4.0

    def test_default_path_and_validation(self, tmp_path):
        assert BenchReport("x").default_path(str(tmp_path)).endswith("BENCH_x.json")
        with pytest.raises(ValueError):
            BenchReport("")

    def test_written_json_is_sorted_and_valid(self, tmp_path):
        path = str(tmp_path / "BENCH_unit.json")
        report = BenchReport("unit")
        report.record("metric", 1.5, "ratio", size=3)
        report.write(path)
        with open(path, "r", encoding="utf-8") as handle:
            parsed = json.load(handle)
        assert parsed[0]["entries"][0]["params"] == {"size": 3}


def build_engine():
    engine = DataflowEngine("perf-engine")
    engine.add_operator(SourceOperator("source", [1, 2, 3],
                                       cost_per_item_seconds=0.5))
    engine.add_operator(FunctionOperator("double", lambda x: 2 * x,
                                         cost_fn=lambda _: 1.0))
    engine.add_operator(SinkOperator("sink"))
    engine.connect("source", "double")
    engine.connect("double", "sink")
    return engine


class TestEngineWallStats:
    def test_run_records_wall_seconds(self):
        engine = build_engine()
        assert engine.wall_stats() == {}
        engine.run()
        walls = engine.wall_stats()
        assert set(walls) == {"source", "double", "sink"}
        assert all(value >= 0.0 for value in walls.values())
        assert engine.last_run_wall_seconds >= max(walls.values())
        # The deterministic stats view stays wall-clock free.
        assert "wall_seconds" not in engine.stats()["double"]

    def test_reset_clears_wall_stats(self):
        engine = build_engine()
        engine.run()
        engine.reset()
        assert engine.wall_stats() == {}
        assert engine.last_run_wall_seconds == 0.0

    def test_scheduled_engine_records_wall_seconds(self):
        engine = build_engine()
        scheduler = EventScheduler()
        scheduled = ScheduledEngine(scheduler, engine).start()
        scheduler.run()
        assert scheduled.finished
        assert set(scheduled.operator_wall_seconds) == {"source", "double", "sink"}
        assert all(value >= 0.0
                   for value in scheduled.operator_wall_seconds.values())


class TestFleetPerfFields:
    def test_report_carries_simulation_wall_clock(self):
        jobs = [CameraJob(camera=f"cam-{index}", video=f"v{index}",
                          num_frames=100, frames_for_inference=10,
                          edge_seconds=1.0, cloud_seconds=0.5,
                          camera_edge_bytes=10_000, edge_cloud_bytes=1_000)
                for index in range(4)]
        report = FleetOrchestrator(jobs, num_edge_servers=2).run()
        assert report.sim_wall_seconds > 0.0
        assert report.events_processed > 0
        assert report.events_per_second > 0.0
        # The deterministic flat view excludes wall-clock noise but keeps the
        # (deterministic) event count.
        row = report.as_dict()
        assert "sim_wall_seconds" not in row
        assert row["events_processed"] == float(report.events_processed)
