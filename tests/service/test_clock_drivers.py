"""Clock-driver contract: pacing changes timing, never the simulation."""

from __future__ import annotations

import pytest

from repro.dataflow.scheduler import EventScheduler
from repro.errors import ServiceError
from repro.service import RealTimeClock, VirtualClock


class FakeWall:
    """A controllable monotonic clock whose ``sleep`` advances it exactly."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_clock(speedup: float = 1.0, start: float = 100.0):
    wall = FakeWall(start)
    return RealTimeClock(speedup=speedup, wall=wall, sleep=wall.sleep), wall


def trace_run(scheduler: EventScheduler, times):
    fired = []
    for event_time in times:
        scheduler.schedule_at(event_time,
                              lambda t=event_time: fired.append(t))
    return fired


class TestVirtualClock:
    def test_equivalent_to_scheduler_run(self):
        reference, driven = EventScheduler(), EventScheduler()
        fired_reference = trace_run(reference, [0.5, 1.0, 1.0, 3.0])
        fired_driven = trace_run(driven, [0.5, 1.0, 1.0, 3.0])
        count_reference = reference.run(until=1.5)
        count_driven = VirtualClock().run(driven, until=1.5)
        assert fired_reference == fired_driven
        assert count_reference == count_driven == 3
        assert reference.now == driven.now == 1.5
        assert reference.run() == VirtualClock().run(driven)
        assert fired_reference == fired_driven

    def test_describe(self):
        assert VirtualClock().describe() == "virtual"


class TestRealTimeClock:
    def test_rejects_non_positive_speedup(self):
        for speedup in (0.0, -1.0):
            with pytest.raises(ServiceError):
                RealTimeClock(speedup=speedup)

    def test_sleeps_match_event_spacing(self):
        clock, wall = make_clock(speedup=1.0)
        scheduler = EventScheduler()
        fired = trace_run(scheduler, [1.0, 2.5, 2.5, 4.0])
        assert clock.run(scheduler) == 4
        assert fired == [1.0, 2.5, 2.5, 4.0]
        # One sleep per distinct instant; the tied event needs no wait.
        assert wall.sleeps == pytest.approx([1.0, 1.5, 1.5])
        assert clock.total_sleep_seconds == pytest.approx(4.0)
        assert clock.max_lag_seconds == 0.0
        assert clock.events_fired == 4

    def test_speedup_divides_wall_time(self):
        clock, wall = make_clock(speedup=10.0)
        scheduler = EventScheduler()
        trace_run(scheduler, [5.0, 20.0])
        clock.run(scheduler)
        assert wall.sleeps == pytest.approx([0.5, 1.5])

    def test_until_boundary_matches_virtual_semantics(self):
        clock, wall = make_clock(speedup=1.0)
        scheduler = EventScheduler()
        fired = trace_run(scheduler, [1.0, 2.0, 3.0])
        assert clock.run(scheduler, until=2.0) == 2
        assert fired == [1.0, 2.0]        # event exactly at the horizon fires
        assert scheduler.now == 2.0
        assert scheduler.pending_events == 1
        # The idle tail of a bounded run is waited out in wall time.
        trace_run(scheduler, [])
        clock.run(scheduler, until=2.5)
        assert scheduler.now == 2.5
        assert wall.sleeps[-1] == pytest.approx(0.5)

    def test_records_lag_when_behind(self):
        clock, wall = make_clock(speedup=1.0)
        scheduler = EventScheduler()

        def slow_event():
            wall.advance(3.0)  # the event handler takes 3 wall seconds

        scheduler.schedule_at(1.0, slow_event)
        scheduler.schedule_at(2.0, lambda: None)
        clock.run(scheduler)
        # Event at t=2 was due 1 wall second after t=1, but the handler ate
        # 3 seconds: it fires 2 seconds late, immediately, with no sleep.
        assert clock.max_lag_seconds == pytest.approx(2.0)
        assert wall.sleeps == pytest.approx([1.0])

    def test_anchor_persists_across_runs_until_reset(self):
        clock, wall = make_clock(speedup=1.0)
        scheduler = EventScheduler()
        trace_run(scheduler, [1.0])
        clock.run(scheduler)
        trace_run(scheduler, [2.0])
        clock.run(scheduler)
        # Second run paces against the original anchor: one more second.
        assert wall.sleeps == pytest.approx([1.0, 1.0])
        clock.reset()
        wall.advance(50.0)
        trace_run(scheduler, [2.5])
        clock.run(scheduler)
        # Re-anchored: the event half a virtual second ahead of the clock
        # sleeps 0.5 s from the *new* wall anchor, not 0.5 s minus 50.
        assert wall.sleeps[-1] == pytest.approx(0.5)

    def test_simulation_identical_to_virtual_clock(self):
        times = [0.25, 0.25, 1.0, 1.75, 1.75, 1.75, 3.5]
        virtual_scheduler, real_scheduler = EventScheduler(), EventScheduler()
        virtual_fired = trace_run(virtual_scheduler, times)
        real_fired = trace_run(real_scheduler, times)
        VirtualClock().run(virtual_scheduler)
        clock, _ = make_clock(speedup=100.0)
        clock.run(real_scheduler)
        assert virtual_fired == real_fired
        assert virtual_scheduler.now == real_scheduler.now
        assert (virtual_scheduler.events_processed
                == real_scheduler.events_processed)

    def test_describe_mentions_speedup(self):
        assert "250" in RealTimeClock(speedup=250).describe()
