"""Horizon semantics of ``run(until=...)`` and mid-service busy accounting.

Two regressions are pinned here:

* ``EventScheduler.run(until=...)`` boundary semantics — an event exactly
  at the horizon fires, later events stay queued, the clock advances to
  the horizon, and a later ``run()`` resumes cleanly.
* ``ServiceStation`` used to charge ``busy_seconds`` when a job *started*
  service, so a run cut off at a horizon counted unfinished service as
  consumed and mid-run utilisation could exceed 1.0.  Busy time now
  accrues at completion, with :meth:`busy_seconds_elapsed` pro-rating
  in-flight jobs for live snapshots.
"""

from __future__ import annotations

import pytest

from repro.dataflow.scheduler import EventScheduler, ServiceStation
from repro.errors import DataflowError
from repro.net.contention import ContendedLink
from repro.net.link import NetworkLink


class TestRunUntilBoundary:
    def test_event_exactly_at_horizon_fires(self):
        scheduler = EventScheduler()
        fired = []
        for time in (1.0, 2.0, 2.0, 3.0):
            scheduler.schedule_at(time, lambda t=time: fired.append(t))
        assert scheduler.run(until=2.0) == 3
        assert fired == [1.0, 2.0, 2.0]

    def test_later_events_stay_queued_and_clock_advances(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(5.0, lambda: None)
        assert scheduler.run(until=3.0) == 0
        assert scheduler.now == 3.0
        assert scheduler.pending_events == 1

    def test_clock_advances_to_horizon_on_empty_heap(self):
        scheduler = EventScheduler()
        scheduler.run(until=7.5)
        assert scheduler.now == 7.5
        assert scheduler.pending_events == 0

    def test_subsequent_run_resumes(self):
        scheduler = EventScheduler()
        fired = []
        for time in (1.0, 4.0, 6.0):
            scheduler.schedule_at(time, lambda t=time: fired.append(t))
        scheduler.run(until=2.0)
        assert fired == [1.0]
        assert scheduler.run() == 2
        assert fired == [1.0, 4.0, 6.0]
        assert scheduler.now == 6.0

    def test_horizon_in_the_past_is_a_no_op_for_the_clock(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(2.0, lambda: None)
        scheduler.run(until=2.0)
        assert scheduler.run(until=1.0) == 0
        assert scheduler.now == 2.0


class TestAdvanceTo:
    def test_rejects_past_target(self):
        scheduler = EventScheduler()
        scheduler.run(until=5.0)
        with pytest.raises(DataflowError):
            scheduler.advance_to(4.0)

    def test_rejects_skipping_pending_events(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(2.0, lambda: None)
        with pytest.raises(DataflowError):
            scheduler.advance_to(3.0)

    def test_advances_to_exact_event_time(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(2.0, lambda: None)
        scheduler.advance_to(2.0)
        assert scheduler.now == 2.0
        assert scheduler.pending_events == 1  # the event has not fired


class TestMidServiceBusyAccounting:
    def test_horizon_cut_does_not_charge_unfinished_service(self):
        scheduler = EventScheduler()
        station = ServiceStation(scheduler, "edge", capacity=1)
        station.submit(10.0)
        scheduler.run(until=4.0)
        # The regression: busy_seconds used to read 10.0 here (charged at
        # start), making utilisation over the 4 s horizon read 2.5.
        assert station.stats.busy_seconds == 0.0
        assert station.busy_seconds_elapsed(4.0) == pytest.approx(4.0)
        assert station.utilisation(4.0, now=4.0) == pytest.approx(1.0)
        assert station.utilisation(4.0) == 0.0  # completed-only view
        scheduler.run()
        assert station.stats.busy_seconds == pytest.approx(10.0)
        assert station.utilisation(10.0) == pytest.approx(1.0)

    def test_utilisation_never_exceeds_one_during_service(self):
        scheduler = EventScheduler()
        station = ServiceStation(scheduler, "edge", capacity=1)
        for _ in range(3):
            station.submit(2.0)
        for horizon in (0.5, 1.0, 2.5, 3.0, 5.5, 6.0):
            scheduler.run(until=horizon)
            utilisation = station.utilisation(horizon, now=horizon)
            assert 0.0 <= utilisation <= 1.0 + 1e-12, horizon

    def test_multi_worker_pro_rating(self):
        scheduler = EventScheduler()
        station = ServiceStation(scheduler, "cloud", capacity=2)
        station.submit(6.0)
        station.submit(6.0)
        station.submit(6.0)  # queued behind the first two
        scheduler.run(until=3.0)
        # Two workers half-way through their jobs: 3 s each.
        assert station.busy_seconds_elapsed(3.0) == pytest.approx(6.0)
        assert station.utilisation(3.0, now=3.0) == pytest.approx(1.0)
        scheduler.run(until=8.0)
        # First two completed (12 s) + third 2 s into service.
        assert station.stats.busy_seconds == pytest.approx(12.0)
        assert station.busy_seconds_elapsed(8.0) == pytest.approx(14.0)
        assert station.utilisation(8.0, now=8.0) == pytest.approx(14.0 / 16.0)

    def test_elapsed_caps_at_service_time(self):
        scheduler = EventScheduler()
        station = ServiceStation(scheduler, "edge")
        station.submit(2.0)
        scheduler.run(until=1.0)
        # A query beyond the job's own end never over-counts it.
        assert station.busy_seconds_elapsed(100.0) == pytest.approx(2.0)

    def test_drained_totals_are_unchanged_by_the_fix(self):
        scheduler = EventScheduler()
        station = ServiceStation(scheduler, "edge", capacity=2)
        for seconds in (1.0, 2.0, 3.0, 4.0):
            station.submit(seconds)
        scheduler.run()
        assert station.stats.busy_seconds == pytest.approx(10.0)
        assert station.stats.completed == 4
        assert station.busy_seconds_elapsed() == pytest.approx(10.0)

    def test_contended_link_pro_rates_in_flight_transfer(self):
        scheduler = EventScheduler()
        # 8 Mbps, no latency: a 10-megabyte payload takes 10 s to transfer.
        link = ContendedLink(scheduler, NetworkLink(
            name="wan", bandwidth_mbps=8.0, latency_ms=0.0))
        link.submit(10_000_000)
        scheduler.run(until=4.0)
        assert link.stats.busy_seconds == 0.0
        assert link.in_service == 1
        assert link.busy_seconds_elapsed(4.0) == pytest.approx(4.0)
        assert link.utilisation(4.0, now=4.0) == pytest.approx(1.0)
        scheduler.run()
        assert link.stats.busy_seconds == pytest.approx(10.0)
