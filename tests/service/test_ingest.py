"""Admission control, backpressure and session lifecycle of StreamIngest."""

from __future__ import annotations

import pytest

from repro.cluster import CameraJob
from repro.config import SystemConfig
from repro.errors import AdmissionError, BackpressureError, ServiceError
from repro.service import (FrameChunk, SessionState, StreamingService,
                           TenantPolicy, chunk_camera_job)

CHUNK = FrameChunk(num_frames=30, frames_for_inference=3,
                   edge_seconds=0.2, cloud_seconds=0.05,
                   camera_edge_bytes=1_000_000, edge_cloud_bytes=100_000)


def make_service(**kwargs):
    kwargs.setdefault("num_edge_servers", 2)
    return StreamingService(**kwargs)


class TestAdmission:
    def test_round_robin_placement(self):
        service = make_service(num_edge_servers=3)
        indices = [service.open_session(f"cam{i}").edge_index
                   for i in range(6)]
        assert indices == [0, 1, 2, 0, 1, 2]

    def test_pinned_placement_and_range_check(self):
        service = make_service()
        assert service.open_session("a", edge_index=1).edge_index == 1
        with pytest.raises(AdmissionError):
            service.open_session("b", edge_index=2)

    def test_service_wide_session_cap(self):
        service = make_service(max_sessions=2)
        service.open_session("a")
        service.open_session("b")
        with pytest.raises(AdmissionError):
            service.open_session("c")
        assert service.ingest.sessions_rejected == 1
        # Closing a drained session frees a slot.
        service.close_session("a")
        service.open_session("c")

    def test_unknown_tenant_rejected(self):
        service = make_service()
        with pytest.raises(AdmissionError):
            service.open_session("a", tenant="nobody")

    def test_tenant_quota(self):
        service = make_service(
            tenants=(TenantPolicy(name="acme", max_sessions=1),))
        service.open_session("a", tenant="acme")
        with pytest.raises(AdmissionError):
            service.open_session("b", tenant="acme")
        service.open_session("b")  # the default tenant is unaffected

    def test_duplicate_camera_rejected_until_closed(self):
        service = make_service()
        service.open_session("a")
        with pytest.raises(AdmissionError):
            service.open_session("a")
        service.close_session("a")
        assert service.open_session("a").state is SessionState.OPEN

    def test_wan_saturation_refuses_admissions_and_pushes(self):
        service = make_service(num_edge_servers=1, max_wan_queue_depth=1)
        service.open_session("a")
        # Uplink-heavy chunks (10 MB over the 30 Mbps WAN, no edge compute)
        # pile up on the single WAN: one in service, two queued.
        heavy = FrameChunk(num_frames=30, frames_for_inference=3,
                           edge_seconds=0.0, cloud_seconds=0.05,
                           camera_edge_bytes=1_000,
                           edge_cloud_bytes=10_000_000)
        for _ in range(3):
            service.push_frames("a", heavy)
        service.run_for(0.1)
        assert service.wan_links[0].queue_depth >= 1
        with pytest.raises(AdmissionError):
            service.open_session("b")
        with pytest.raises(BackpressureError):
            service.push_frames("a", heavy)
        service.drain()
        service.open_session("b")  # queue drained; admission recovers


class TestBackpressure:
    def test_in_flight_bound(self):
        service = make_service(
            tenants=(TenantPolicy(name="t", max_pending_chunks=2),))
        service.open_session("a", tenant="t")
        service.push_frames("a", CHUNK)
        service.push_frames("a", CHUNK)
        with pytest.raises(BackpressureError):
            service.push_frames("a", CHUNK)
        assert service.ingest.pushes_rejected == 1
        service.drain()
        service.push_frames("a", CHUNK)  # the pipeline drained; room again

    def test_retune_raises_bound_live(self):
        service = make_service(
            tenants=(TenantPolicy(name="t", max_pending_chunks=1),))
        service.open_session("a", tenant="t")
        service.push_frames("a", CHUNK)
        with pytest.raises(BackpressureError):
            service.push_frames("a", CHUNK)
        service.retune_session("a", max_pending_chunks=4)
        service.push_frames("a", CHUNK)  # same session, new bound, no drop
        session = service.ingest.sessions["a"]
        assert session.chunks_pushed == 2
        with pytest.raises(ServiceError):
            service.retune_session("a", max_pending_chunks=0)

    def test_retune_deploys_parameters_and_bumps_version(self):
        from repro.codec import EncoderParameters
        service = make_service()
        service.open_session("a")
        session = service.ingest.sessions["a"]
        assert session.parameters is None and session.parameter_version == 0
        tuned = EncoderParameters(gop_size=100, scenecut_threshold=200)
        service.retune_session("a", parameters=tuned)
        assert session.parameters == tuned
        assert session.parameter_version == 1
        # A bound-only retune must not touch the parameter version.
        service.retune_session("a", max_pending_chunks=4)
        assert session.parameter_version == 1
        service.push_frames("a", CHUNK)  # the retuned session stays live
        with pytest.raises(ServiceError):
            service.retune_session("a")  # neither knob given
        service.close_session("a")
        service.drain()
        with pytest.raises(ServiceError):
            service.retune_session("a", parameters=tuned)  # closed

    def test_push_to_closed_session_fails(self):
        service = make_service()
        service.open_session("a")
        service.close_session("a")
        with pytest.raises(ServiceError):
            service.push_frames("a", CHUNK)
        with pytest.raises(ServiceError):
            service.push_frames("ghost", CHUNK)


class TestLifecycle:
    def test_close_drains_in_flight_chunks(self):
        service = make_service()
        service.open_session("a")
        service.push_frames("a", CHUNK)
        session = service.close_session("a")
        assert session.state is SessionState.DRAINING
        service.drain()
        assert session.state is SessionState.CLOSED
        assert session.chunks_completed == 1
        assert session.closed_at == pytest.approx(session.last_completion)

    def test_close_idle_session_is_immediate(self):
        service = make_service()
        service.open_session("a")
        assert service.close_session("a").state is SessionState.CLOSED
        # Closing again is idempotent.
        assert service.close_session("a").state is SessionState.CLOSED

    def test_latencies_and_accumulators_recorded(self):
        service = make_service(num_edge_servers=1)
        service.open_session("a")
        service.push_frames("a", CHUNK)
        service.push_frames("a", CHUNK)
        service.drain()
        session = service.ingest.sessions["a"]
        assert session.frames_pushed == 60
        assert session.camera_edge_bytes_pushed == 2_000_000
        assert len(session.chunk_latencies) == 2
        assert session.first_arrival == 0.0
        assert all(latency > 0 for latency in session.chunk_latencies)


class TestTenantReconfiguration:
    def test_register_tenant_does_not_touch_existing_sessions(self):
        service = make_service(
            tenants=(TenantPolicy(name="t", max_sessions=4,
                                  max_pending_chunks=8),))
        service.open_session("a", tenant="t")
        service.push_frames("a", CHUNK)
        service.register_tenant(TenantPolicy(name="t", max_sessions=1,
                                             max_pending_chunks=1))
        session = service.ingest.sessions["a"]
        assert session.max_pending_chunks == 8  # grandfathered bound
        assert session.state is SessionState.OPEN
        # The new quota only constrains future admissions.
        with pytest.raises(AdmissionError):
            service.open_session("b", tenant="t")
        service.drain()
        assert session.chunks_completed == 1  # nothing was dropped

    def test_tenant_config_sizes_camera_uplink(self):
        fast = SystemConfig(camera_edge_bandwidth_mbps=1000.0,
                            camera_edge_latency_ms=0.0)
        service = make_service(
            tenants=(TenantPolicy(name="fast", config=fast),))
        service.open_session("a", tenant="fast")
        service.open_session("b")
        assert service.lan_links["a"].link.bandwidth_mbps == 1000.0
        assert (service.lan_links["b"].link.bandwidth_mbps
                == service.config.camera_edge_bandwidth_mbps)


class TestChunkCameraJob:
    def test_totals_preserved_exactly(self):
        job = CameraJob(camera="c", video="v", num_frames=307,
                        frames_for_inference=41, edge_seconds=3.7,
                        cloud_seconds=1.3, camera_edge_bytes=1_234_567,
                        edge_cloud_bytes=98_765)
        chunks = chunk_camera_job(job, 7)
        assert len(chunks) == 7
        assert sum(chunk.num_frames for chunk in chunks) == 307
        assert sum(chunk.frames_for_inference for chunk in chunks) == 41
        assert sum(chunk.camera_edge_bytes for chunk in chunks) == 1_234_567
        assert sum(chunk.edge_cloud_bytes for chunk in chunks) == 98_765
        assert sum(chunk.edge_seconds for chunk in chunks) == pytest.approx(3.7)
        assert sum(chunk.cloud_seconds for chunk in chunks) == pytest.approx(1.3)
        assert all(chunk.num_frames in (43, 44) for chunk in chunks)

    def test_single_chunk_is_the_whole_job(self):
        job = CameraJob(camera="c", video="v", num_frames=10,
                        frames_for_inference=2, edge_seconds=1.0,
                        cloud_seconds=0.5, camera_edge_bytes=100,
                        edge_cloud_bytes=50)
        (chunk,) = chunk_camera_job(job, 1)
        assert chunk.num_frames == 10
        assert chunk.camera_edge_bytes == 100
        assert chunk.edge_seconds == pytest.approx(1.0)

    def test_invalid_chunk_counts_and_fields(self):
        job = CameraJob(camera="c", video="v", num_frames=10,
                        frames_for_inference=2, edge_seconds=1.0,
                        cloud_seconds=0.5, camera_edge_bytes=100,
                        edge_cloud_bytes=50)
        with pytest.raises(ServiceError):
            chunk_camera_job(job, 0)
        with pytest.raises(ServiceError):
            FrameChunk(num_frames=-1, frames_for_inference=0,
                       edge_seconds=0.0, cloud_seconds=0.0,
                       camera_edge_bytes=0, edge_cloud_bytes=0)
