"""Virtual-vs-real-time parity and the mid-stream reconfiguration soak.

The parity contract: a :class:`ClockDriver` decides *when* events fire in
wall time, never what they compute, so the same fed workload produces a
:class:`FleetReport` identical (to the 1e-6 ``parity_mismatches``
tolerance) under the virtual and real-time drivers.  The soak test layers
graceful reconfiguration on top — tenants registered and sessions retuned
mid-stream, as scheduler control events — and requires that no stream is
dropped and parity still holds.
"""

from __future__ import annotations

import pytest

from repro.cluster import CameraJob
from repro.errors import ServiceError
from repro.rng import make_rng
from repro.service import (ChunkFeeder, RealTimeClock, SessionState,
                           StreamingService, TenantPolicy, VirtualClock,
                           chunk_camera_job)

TOLERANCE = 1e-6


def make_plans(num_cameras: int, num_chunks: int = 5, seed: int = 321):
    plans = []
    for index in range(num_cameras):
        camera = f"cam-{index:02d}"
        rng = make_rng(seed, "parity", camera)
        job = CameraJob(
            camera=camera, video=f"stream:{camera}",
            num_frames=int(rng.integers(100, 200)),
            frames_for_inference=int(rng.integers(5, 20)),
            edge_seconds=float(rng.uniform(0.3, 1.0)),
            cloud_seconds=float(rng.uniform(0.1, 0.4)),
            camera_edge_bytes=int(rng.uniform(5e5, 2e6)),
            edge_cloud_bytes=int(rng.uniform(5e4, 3e5)),
        )
        plans.append((camera, chunk_camera_job(job, num_chunks)))
    return plans


def feed(service: StreamingService, plans, tenant: str = "default",
         period: float = 0.5):
    feeders = []
    for index, (camera, chunks) in enumerate(plans):
        service.open_session(camera, tenant=tenant)
        feeders.append(ChunkFeeder(service, camera, chunks,
                                   period_seconds=period)
                       .start(at=0.1 * index))
    return feeders


class TestClockParity:
    def test_real_time_report_identical_to_virtual(self):
        plans = make_plans(6)

        def run(clock):
            service = StreamingService(num_edge_servers=2, clock=clock)
            feed(service, plans)
            service.drain()
            return service.fleet_report()

        baseline = run(VirtualClock())
        live = run(RealTimeClock(speedup=1e6))
        assert baseline.parity_mismatches(live, TOLERANCE) == []
        assert baseline.makespan_seconds > 0
        assert live.events_processed == baseline.events_processed

    def test_sliced_runs_match_one_shot_drain(self):
        plans = make_plans(4)

        def run(sliced: bool):
            service = StreamingService(num_edge_servers=2,
                                       clock=VirtualClock())
            feed(service, plans)
            if sliced:
                while service.scheduler.pending_events:
                    service.run_for(0.7)
            else:
                service.drain()
            return service.fleet_report()

        assert run(False).parity_mismatches(run(True), TOLERANCE) == []

    def test_real_time_pacing_smoke(self):
        # A genuinely paced (but heavily sped-up) run: ~1.5 virtual seconds
        # at 100x costs ~15 ms of wall sleeping and still matches virtual.
        plans = make_plans(2, num_chunks=2)

        def run(clock):
            service = StreamingService(num_edge_servers=1, clock=clock)
            feed(service, plans, period=0.3)
            service.drain()
            return service.fleet_report()

        baseline = run(VirtualClock())
        clock = RealTimeClock(speedup=100.0)
        live = run(clock)
        assert baseline.parity_mismatches(live, TOLERANCE) == []
        assert clock.total_sleep_seconds > 0.0


class TestReconfigurationSoak:
    def test_mid_stream_reconfiguration_drops_nothing(self):
        plans = make_plans(18, num_chunks=6, seed=99)
        tenants = (TenantPolicy(name="alpha", max_sessions=8),
                   TenantPolicy(name="beta", max_sessions=8),
                   TenantPolicy(name="gamma", max_sessions=8))

        def run(clock):
            service = StreamingService(num_edge_servers=3, clock=clock,
                                       max_sessions=64, tenants=tenants)
            for index, (camera, chunks) in enumerate(plans):
                tenant = ("alpha", "beta", "gamma")[index % 3]
                service.open_session(camera, tenant=tenant)
                ChunkFeeder(service, camera, chunks,
                            period_seconds=0.5).start(at=0.05 * index)

            # Mid-stream reconfigurations, as ordinary control events so
            # they land identically under either clock driver:
            # a new tenant is admitted while streams are in full flight...
            def admit_delta():
                service.register_tenant(TenantPolicy(name="delta",
                                                     max_sessions=4))
                service.open_session("late-cam", tenant="delta")
                ChunkFeeder(service, "late-cam", plans[0][1],
                            period_seconds=0.5).start()

            service.at(1.2, admit_delta)
            # ... an existing tenant's quota is tightened ...
            service.at(1.6, lambda: service.register_tenant(
                TenantPolicy(name="gamma", max_sessions=1)))
            # ... and live sessions are retuned.
            for camera in ("cam-00", "cam-07", "cam-11"):
                service.at(2.0, lambda cam=camera: service.retune_session(
                    cam, max_pending_chunks=2))
            service.drain()
            return service

        baseline = run(VirtualClock())
        live = run(RealTimeClock(speedup=1e6))

        for service in (baseline, live):
            sessions = service.ingest.sessions
            assert len(sessions) == 19  # 18 originals + the late admission
            for session in sessions.values():
                # No drops: every pushed chunk completed, every session
                # drained to CLOSED, every planned chunk was pushed.
                assert session.state is SessionState.CLOSED
                assert session.chunks_completed == session.chunks_pushed
                assert session.chunks_pushed == 6
            # The tightened gamma quota never dropped existing sessions.
            gamma = [session for session in sessions.values()
                     if session.tenant == "gamma"]
            assert len(gamma) == 6
            status = service.status()
            assert status.active_sessions == 0
            assert status.max_utilisation <= 1.0 + 1e-12

        mismatches = baseline.fleet_report().parity_mismatches(
            live.fleet_report(), TOLERANCE)
        assert mismatches == []

    def test_backpressured_feeder_retries_under_both_clocks(self):
        plans = make_plans(2, num_chunks=8, seed=5)

        def run(clock):
            service = StreamingService(
                num_edge_servers=1, clock=clock,
                tenants=(TenantPolicy(name="tight", max_pending_chunks=1),))
            feeders = []
            for camera, chunks in plans:
                service.open_session(camera, tenant="tight")
                feeders.append(ChunkFeeder(service, camera, chunks,
                                           period_seconds=0.2).start())
            service.drain()
            return service, feeders

        baseline, base_feeders = run(VirtualClock())
        live, live_feeders = run(RealTimeClock(speedup=1e6))
        assert sum(feeder.retries for feeder in base_feeders) > 0
        assert ([feeder.retries for feeder in base_feeders]
                == [feeder.retries for feeder in live_feeders])
        assert baseline.fleet_report().parity_mismatches(
            live.fleet_report(), TOLERANCE) == []
        for feeder in base_feeders:
            assert feeder.done


def test_virtual_clock_is_the_default():
    service = StreamingService()
    assert isinstance(service.clock, VirtualClock)


def test_run_for_rejects_negative():
    service = StreamingService()
    with pytest.raises(ServiceError):
        service.run_for(-1.0)
