"""Composed scenarios stream through the service via scenario_feed."""

from repro.service import (ChunkFeeder, StreamingService, VirtualClock,
                           analyse_scenario, chunk_analysis, scenario_chunks)

SPEC = "highway+rain+night_cycle"
DURATION = 8.0
SCALE = 0.05
SEED = 5


class TestScenarioFeed:
    def test_chunks_carry_scene_payloads(self):
        chunks = scenario_chunks(SPEC, DURATION, SCALE, seed=SEED)
        assert len(chunks) == 4
        for chunk in chunks:
            assert chunk.num_frames == 60
            assert chunk.scene is not None
            assert len(chunk.scene.activities) == chunk.num_frames

    def test_feed_is_deterministic(self):
        first = analyse_scenario(SPEC, DURATION, SCALE, seed=SEED)
        second = analyse_scenario(SPEC, DURATION, SCALE, seed=SEED)
        assert first.activities == second.activities
        assert first.lumas == second.lumas
        assert first.frame_labels == second.frame_labels

    def test_transform_presets_change_the_feed(self):
        plain = analyse_scenario("highway", DURATION, SCALE, seed=SEED)
        composed = analyse_scenario(SPEC, DURATION, SCALE, seed=SEED)
        assert plain.fps == composed.fps
        assert plain.lumas != composed.lumas
        # The schedule is orthogonal to the pixel transforms, so the
        # ground-truth labels line up frame for frame.
        assert plain.frame_labels == composed.frame_labels

    def test_trailing_partial_chunk_is_dropped(self):
        analysis = analyse_scenario(SPEC, 5.0, SCALE, seed=SEED)
        chunks = chunk_analysis(analysis, chunk_seconds=2.0)
        assert len(chunks) == 2
        assert sum(chunk.num_frames for chunk in chunks) == 120

    def test_composed_spec_streams_through_the_service(self):
        chunks = scenario_chunks(SPEC, DURATION, SCALE, seed=SEED)

        def run():
            service = StreamingService(clock=VirtualClock(),
                                       num_edge_servers=2)
            service.open_session("cam-composed")
            ChunkFeeder(service, "cam-composed", chunks,
                        period_seconds=2.0).start(at=0.0)
            service.drain()
            return service

        reference = run()
        replay = run()
        report = reference.fleet_report()
        assert report.parity_mismatches(replay.fleet_report(), 1e-6) == []
        expected_frames = sum(chunk.num_frames for chunk in chunks)
        assert report.total_frames == expected_frames
