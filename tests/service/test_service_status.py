"""Live ServiceStatus snapshots: bounded utilisation, honest counters."""

from __future__ import annotations

import math

import pytest

from repro.errors import AdmissionError
from repro.service import (FrameChunk, RealTimeClock, StreamingService,
                           TenantPolicy)

CHUNK = FrameChunk(num_frames=30, frames_for_inference=3,
                   edge_seconds=0.5, cloud_seconds=0.1,
                   camera_edge_bytes=2_000_000, edge_cloud_bytes=200_000)


def test_empty_service_snapshot_is_well_formed():
    service = StreamingService(num_edge_servers=2)
    status = service.status()
    assert status.virtual_now == 0.0
    assert status.active_sessions == status.total_sessions == 0
    assert status.pending_events == 0
    assert status.max_utilisation == 0.0
    assert status.total_in_flight == 0
    # 2 edges + 2 WAN uplinks + cloud.
    assert [station.name for station in status.stations] == [
        "edge:0", "wan:0", "edge:1", "wan:1", "cloud"]
    assert status.tenants == {"default": 0}
    assert status.clock == "virtual"
    assert status.speedup == float("inf")
    assert status.as_dict()["active_sessions"] == 0


def test_utilisation_bounded_at_every_horizon_cut():
    service = StreamingService(num_edge_servers=1)
    service.open_session("a")
    service.open_session("b")
    for _ in range(4):
        service.push_frames("a", CHUNK)
        service.push_frames("b", CHUNK)
    horizon = 0.0
    while service.scheduler.pending_events:
        horizon += 0.3
        service.run(until=horizon)
        status = service.status()
        for station in status.stations:
            assert 0.0 <= station.utilisation <= 1.0 + 1e-12, (
                f"{station.name} at t={horizon}: {station.utilisation}")
        assert status.max_utilisation <= 1.0 + 1e-12


def test_mid_service_cut_reports_saturated_edge_exactly():
    service = StreamingService(num_edge_servers=1)
    service.open_session("a")
    service.push_frames("a", FrameChunk(
        num_frames=10, frames_for_inference=1, edge_seconds=100.0,
        cloud_seconds=0.0, camera_edge_bytes=0, edge_cloud_bytes=0))
    service.run_for(50.0)
    edge = service.status().station("edge:0")
    assert edge.in_service == 1
    # Busy since ~t=0.005 (LAN latency); pro-rated busy over the 50 s
    # horizon is just under 1.0 — and no longer the 2.0 the start-charging
    # bug produced.
    assert 0.9 < edge.utilisation <= 1.0


def test_session_snapshots_track_progress_and_latency():
    service = StreamingService(
        num_edge_servers=1,
        tenants=(TenantPolicy(name="t", max_sessions=4),))
    service.open_session("a", tenant="t")
    service.push_frames("a", CHUNK)
    service.push_frames("a", CHUNK)
    status = service.status()
    (snapshot,) = status.sessions
    assert snapshot.session_id == "a"
    assert snapshot.tenant == "t"
    assert snapshot.state == "open"
    assert snapshot.in_flight == 2
    assert snapshot.chunks_completed == 0
    assert math.isnan(snapshot.latency_percentiles[50])  # no completions yet
    assert status.tenants == {"default": 0, "t": 1}
    service.drain()
    (snapshot,) = service.status().sessions
    assert snapshot.in_flight == 0
    assert snapshot.chunks_completed == 2
    assert snapshot.latency_percentiles[50] > 0.0


def test_counters_and_clock_fields_under_real_time():
    clock = RealTimeClock(speedup=1e9)
    service = StreamingService(num_edge_servers=1, clock=clock,
                               max_sessions=1)
    service.open_session("a")
    with pytest.raises(AdmissionError):
        service.open_session("b")
    service.push_frames("a", CHUNK)
    service.drain()
    status = service.status()
    assert status.sessions_rejected == 1
    assert status.clock.startswith("real-time")
    assert status.speedup == 1e9
    assert status.clock_max_lag_seconds >= 0.0
    assert status.events_processed == service.scheduler.events_processed
    assert status.wall_run_seconds > 0.0


def test_station_lookup_raises_on_unknown_name():
    service = StreamingService()
    with pytest.raises(KeyError):
        service.status().station("edge:99")
