"""Live ServiceStatus snapshots: bounded utilisation, honest counters."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service import (FrameChunk, RealTimeClock, StreamingService,
                           TenantPolicy)
from repro.service.status import (HealthSample, ServiceStatus,
                                  SessionSnapshot, StationSnapshot)

CHUNK = FrameChunk(num_frames=30, frames_for_inference=3,
                   edge_seconds=0.5, cloud_seconds=0.1,
                   camera_edge_bytes=2_000_000, edge_cloud_bytes=200_000)


def test_empty_service_snapshot_is_well_formed():
    service = StreamingService(num_edge_servers=2)
    status = service.status()
    assert status.virtual_now == 0.0
    assert status.active_sessions == status.total_sessions == 0
    assert status.pending_events == 0
    assert status.max_utilisation == 0.0
    assert status.total_in_flight == 0
    # 2 edges + 2 WAN uplinks + cloud.
    assert [station.name for station in status.stations] == [
        "edge:0", "wan:0", "edge:1", "wan:1", "cloud"]
    assert status.tenants == {"default": 0}
    assert status.clock == "virtual"
    assert status.speedup == float("inf")
    assert status.as_dict()["active_sessions"] == 0


def test_utilisation_bounded_at_every_horizon_cut():
    service = StreamingService(num_edge_servers=1)
    service.open_session("a")
    service.open_session("b")
    for _ in range(4):
        service.push_frames("a", CHUNK)
        service.push_frames("b", CHUNK)
    horizon = 0.0
    while service.scheduler.pending_events:
        horizon += 0.3
        service.run(until=horizon)
        status = service.status()
        for station in status.stations:
            assert 0.0 <= station.utilisation <= 1.0 + 1e-12, (
                f"{station.name} at t={horizon}: {station.utilisation}")
        assert status.max_utilisation <= 1.0 + 1e-12


def test_mid_service_cut_reports_saturated_edge_exactly():
    service = StreamingService(num_edge_servers=1)
    service.open_session("a")
    service.push_frames("a", FrameChunk(
        num_frames=10, frames_for_inference=1, edge_seconds=100.0,
        cloud_seconds=0.0, camera_edge_bytes=0, edge_cloud_bytes=0))
    service.run_for(50.0)
    edge = service.status().station("edge:0")
    assert edge.in_service == 1
    # Busy since ~t=0.005 (LAN latency); pro-rated busy over the 50 s
    # horizon is just under 1.0 — and no longer the 2.0 the start-charging
    # bug produced.
    assert 0.9 < edge.utilisation <= 1.0


def test_session_snapshots_track_progress_and_latency():
    service = StreamingService(
        num_edge_servers=1,
        tenants=(TenantPolicy(name="t", max_sessions=4),))
    service.open_session("a", tenant="t")
    service.push_frames("a", CHUNK)
    service.push_frames("a", CHUNK)
    status = service.status()
    (snapshot,) = status.sessions
    assert snapshot.session_id == "a"
    assert snapshot.tenant == "t"
    assert snapshot.state == "open"
    assert snapshot.in_flight == 2
    assert snapshot.chunks_completed == 0
    assert math.isnan(snapshot.latency_percentiles[50])  # no completions yet
    assert status.tenants == {"default": 0, "t": 1}
    service.drain()
    (snapshot,) = service.status().sessions
    assert snapshot.in_flight == 0
    assert snapshot.chunks_completed == 2
    assert snapshot.latency_percentiles[50] > 0.0


def test_counters_and_clock_fields_under_real_time():
    clock = RealTimeClock(speedup=1e9)
    service = StreamingService(num_edge_servers=1, clock=clock,
                               max_sessions=1)
    service.open_session("a")
    with pytest.raises(AdmissionError):
        service.open_session("b")
    service.push_frames("a", CHUNK)
    service.drain()
    status = service.status()
    assert status.sessions_rejected == 1
    assert status.clock.startswith("real-time")
    assert status.speedup == 1e9
    assert status.clock_max_lag_seconds >= 0.0
    assert status.events_processed == service.scheduler.events_processed
    assert status.wall_run_seconds > 0.0


def test_station_lookup_raises_on_unknown_name():
    service = StreamingService()
    with pytest.raises(KeyError):
        service.status().station("edge:99")


def handcrafted_status() -> ServiceStatus:
    """A snapshot exercising every lossy corner of naive JSON encoding:
    int dict keys, nan, both infinities."""
    return ServiceStatus(
        virtual_now=12.5, wall_run_seconds=0.25, clock="virtual",
        speedup=float("inf"), clock_max_lag_seconds=0.0,
        events_processed=100, pending_events=3, active_sessions=1,
        total_sessions=2, sessions_rejected=1, pushes_rejected=0,
        tenants={"default": 1},
        stations=(StationSnapshot(name="edge:0", queue_depth=2, in_service=1,
                                  busy_seconds=4.5, utilisation=0.36,
                                  completed=9),),
        sessions=(SessionSnapshot(
            session_id="cam-a", tenant="default", edge_index=0, state="open",
            frames_pushed=300, chunks_pushed=10, chunks_completed=8,
            in_flight=2, lan_queue_depth=0,
            latency_percentiles={50: 0.125, 95: float("nan"),
                                 99: float("-inf")},
            parameter_version=2),),
        close_reasons={"client": 1},
        breaker_states={0: "closed", 1: "open"},
        fault_counters={"crashes_seen": 1},
        retune_counters={"retunes_applied": 2},
        retune_history=("camera=cam-a t=0.000000 v1 trigger=initial "
                        "old=[none] new=[gop=500, sc=200] f1=nan",),
        health_history=(HealthSample(virtual_now=6.0,
                                     counters={"crashes_seen": 1}),),
    )


class TestStatusJsonRoundTrip:
    def test_round_trip_is_byte_identical(self):
        # Regression: json.dumps(asdict(status)) used to stringify the
        # int percentile/breaker keys and choke on nan/inf.  The wire
        # format must survive encode -> decode -> encode unchanged.
        status = handcrafted_status()
        restored = ServiceStatus.from_json(status.to_json())
        assert restored.to_json() == status.to_json()
        assert restored.to_json(indent=2) == status.to_json(indent=2)

    def test_int_keys_are_restored_as_ints(self):
        restored = ServiceStatus.from_json(handcrafted_status().to_json())
        (session,) = restored.sessions
        assert sorted(session.latency_percentiles) == [50, 95, 99]
        assert all(isinstance(key, int)
                   for key in session.latency_percentiles)
        assert sorted(restored.breaker_states) == [0, 1]
        assert all(isinstance(key, int) for key in restored.breaker_states)

    def test_nan_and_inf_survive_via_sentinels(self):
        text = handcrafted_status().to_json()
        assert '"nan"' in text and '"inf"' in text and '"-inf"' in text
        restored = ServiceStatus.from_json(text)
        (session,) = restored.sessions
        assert session.latency_percentiles[50] == 0.125
        assert math.isnan(session.latency_percentiles[95])
        assert session.latency_percentiles[99] == float("-inf")
        assert restored.speedup == float("inf")

    def test_to_json_is_strict_json(self):
        # allow_nan is off: the payload parses under a strict decoder.
        text = handcrafted_status().to_json()
        json.loads(text, parse_constant=lambda name: pytest.fail(
            f"non-standard JSON constant leaked: {name}"))

    def test_live_drained_service_round_trips(self):
        service = StreamingService(num_edge_servers=1)
        service.open_session("a")
        service.push_frames("a", CHUNK)
        service.drain()
        status = service.status()
        # The live snapshot has real nan-free percentiles and int keys.
        assert ServiceStatus.from_json(status.to_json()).to_json() == (
            status.to_json())

    def test_live_mid_run_status_with_nan_percentiles_round_trips(self):
        service = StreamingService(num_edge_servers=1)
        service.open_session("a")
        service.push_frames("a", CHUNK)  # no completions: percentiles nan
        status = service.status()
        assert math.isnan(status.sessions[0].latency_percentiles[50])
        assert ServiceStatus.from_json(status.to_json()).to_json() == (
            status.to_json())


class TestHealthHistoryRing:
    def degraded_service(self) -> StreamingService:
        # Quota overflow shed to the degraded tier is the cheapest
        # deterministic way to make the combined counters non-empty.
        service = StreamingService(
            num_edge_servers=1,
            tenants=(TenantPolicy(name="gold", max_sessions=1),),
            degraded_tenant=TenantPolicy(name="degraded", max_sessions=8))
        service.open_session("cam-1", tenant="gold")
        service.open_session("cam-2", tenant="gold")  # shed
        return service

    def test_clean_runs_never_sample(self):
        service = StreamingService(num_edge_servers=1)
        service.open_session("a")
        service.push_frames("a", CHUNK)
        for _ in range(5):
            assert service.status().health_history == ()
        service.drain()
        assert service.status().health_history == ()

    def test_samples_capture_time_and_counters(self):
        service = self.degraded_service()
        service.run_for(1.0)
        status = service.status()
        (sample,) = status.health_history
        assert sample.virtual_now == status.virtual_now
        assert sample.counters["sessions_degraded"] == 1
        assert sample.counters == status.fault_counters

    def test_ring_is_bounded_and_keeps_the_newest(self):
        service = StreamingService(
            num_edge_servers=1,
            tenants=(TenantPolicy(name="gold", max_sessions=1),),
            degraded_tenant=TenantPolicy(name="degraded", max_sessions=8),
            health_history_limit=3)
        service.open_session("cam-1", tenant="gold")
        service.open_session("cam-2", tenant="gold")  # shed
        times = []
        for step in range(1, 6):
            service.run(until=float(step))
            times.append(service.status().virtual_now)
        history = service.status().health_history
        assert len(history) == 3
        # The ring evicted the oldest samples and kept the latest ones
        # (the final status() call itself appended the 6th sample).
        assert [sample.virtual_now for sample in history] == times[-2:] + [
            service.scheduler.now]

    def test_health_history_limit_validation(self):
        with pytest.raises(ServiceError):
            StreamingService(health_history_limit=0)
