"""Tests for the shared infrastructure: rng, config, logging, sizing."""

import logging

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import HardwareCalibration, SystemConfig
from repro.errors import ConfigurationError, SieveError
from repro.jpeg_sizing import raw_frame_bytes, resized_frame_bytes
from repro.logging_utils import ProgressReporter, configure_logging, get_logger, log_duration
from repro.rng import DEFAULT_SEED, derive_seed, make_rng, spawn_seeds


class TestRng:
    def test_default_seed_is_deterministic(self):
        assert make_rng().integers(0, 1000) == make_rng().integers(0, 1000)

    def test_same_labels_same_stream(self):
        a = make_rng(1, "camera", "noise")
        b = make_rng(1, "camera", "noise")
        assert np.array_equal(a.normal(size=8), b.normal(size=8))

    def test_different_labels_decorrelated(self):
        a = make_rng(1, "camera", "noise")
        b = make_rng(1, "camera", "events")
        assert not np.array_equal(a.normal(size=8), b.normal(size=8))

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(7, "x") == derive_seed(7, "x")
        assert derive_seed(7, "x") != derive_seed(7, "y")
        assert derive_seed(7, "x") != derive_seed(8, "x")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_derive_seed_in_range(self, root, label):
        seed = derive_seed(root, label)
        assert 0 <= seed < 2**63

    def test_spawn_seeds(self):
        seeds = spawn_seeds(3, ["a", "b"])
        assert set(seeds) == {"a", "b"}
        assert seeds["a"] != seeds["b"]

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_default_seed_value(self):
        assert DEFAULT_SEED == 20200601


class TestConfig:
    def test_defaults_valid(self):
        config = SystemConfig()
        assert config.edge_cloud_bandwidth_mbps == 30.0
        assert config.hardware.seek_ms_per_frame_1080p == pytest.approx(0.43)

    def test_with_bandwidth(self):
        faster = SystemConfig().with_bandwidth(100.0)
        assert faster.edge_cloud_bandwidth_mbps == 100.0
        assert faster.camera_edge_bandwidth_mbps == SystemConfig().camera_edge_bandwidth_mbps

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(edge_cloud_bandwidth_mbps=0)

    def test_invalid_calibration_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareCalibration(decode_ms_per_frame_1080p=-1)

    def test_calibration_as_dict(self):
        values = HardwareCalibration().as_dict()
        assert values["decode_ms_per_frame_1080p"] > values["seek_ms_per_frame_1080p"]

    def test_configuration_error_is_sieve_error(self):
        assert issubclass(ConfigurationError, SieveError)


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("codec.encoder").name == "repro.codec.encoder"
        assert get_logger("repro.core").name == "repro.core"

    def test_configure_logging_idempotent(self):
        first = configure_logging(logging.DEBUG)
        second = configure_logging(logging.INFO)
        managed = [h for h in second.handlers if getattr(h, "_repro_managed", False)]
        assert first is second
        assert len(managed) == 1

    def test_log_duration_context(self, caplog):
        logger = get_logger("tests.duration")
        # configure_logging() stops propagation at the library root; re-enable
        # it so caplog's root handler sees the record.
        logging.getLogger("repro").propagate = True
        try:
            with caplog.at_level(logging.DEBUG, logger=logger.name):
                with log_duration(logger, "unit of work"):
                    pass
        finally:
            logging.getLogger("repro").propagate = False
        assert any("unit of work" in record.message for record in caplog.records)

    def test_progress_reporter_counts(self):
        reporter = ProgressReporter(get_logger("tests.progress"), total=10, label="x")
        for _ in range(10):
            reporter.update()
        assert reporter.count == 10


class TestSizing:
    def test_resized_frame_bytes_monotone_in_area(self):
        assert resized_frame_bytes(300, 300) > resized_frame_bytes(100, 100)

    def test_resized_frame_realistic_for_paper_thumbnail(self):
        size = resized_frame_bytes(300, 300)
        assert 10_000 < size < 80_000

    def test_raw_frame_bytes(self):
        assert raw_frame_bytes(10, 10, channels=3) == 300

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            resized_frame_bytes(0, 100)
        with pytest.raises(ConfigurationError):
            raw_frame_bytes(10, -1)
