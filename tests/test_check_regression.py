"""The CI perf gate (``benchmarks/check_regression.py``).

Acceptance contract: the gate goes red on an injected 2x slowdown of any
hot-path section and green when the fresh report matches the committed
baseline.
"""

import copy
import importlib.util
import json
import os
import sys

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "benchmarks", "check_regression.py"))
check_regression = importlib.util.module_from_spec(_SPEC)
sys.modules[_SPEC.name] = check_regression
_SPEC.loader.exec_module(check_regression)


def make_run(entries):
    return {
        "report": "hotpaths",
        "python": "3.11.0",
        "context": {"duration_seconds": 8.0, "render_scale": 0.05},
        "entries": [
            {"name": name, "value": value, "unit": unit, "params": {}}
            for name, value, unit in entries
        ],
    }


BASELINE_ENTRIES = [
    ("entropy_encode.baseline", 0.0050, "seconds"),
    ("entropy_encode.optimised", 0.0003, "seconds"),
    ("entropy_encode.speedup", 16.7, "ratio"),
    ("scheduler_event_loop", 0.040, "seconds"),
    ("scheduler_event_loop.events_per_second", 500_000.0, "items_per_second"),
    ("build_workloads.cold", 14.0, "seconds"),
    ("prepare_dataset.warm_cached", 2e-5, "seconds"),
]


@pytest.fixture()
def baseline_run():
    return make_run(BASELINE_ENTRIES)


def slowed(run, factor=2.0):
    """The same run record with every measurement ``factor``-times worse."""
    worse = copy.deepcopy(run)
    for entry in worse["entries"]:
        if entry["unit"] == "seconds":
            entry["value"] *= factor
        else:
            entry["value"] /= factor
    return worse


class TestCompareRuns:
    def test_identical_runs_are_green(self, baseline_run):
        deltas = check_regression.compare_runs(baseline_run, baseline_run)
        assert deltas
        assert not any(delta.failed for delta in deltas)

    def test_two_x_slowdown_goes_red(self, baseline_run):
        deltas = check_regression.compare_runs(baseline_run,
                                               slowed(baseline_run))
        failed = {delta.name for delta in deltas if delta.failed}
        assert "scheduler_event_loop" in failed
        assert "scheduler_event_loop.events_per_second" in failed
        assert "entropy_encode.speedup" in failed
        assert "build_workloads.cold" in failed

    def test_reference_probes_never_gate(self, baseline_run):
        deltas = check_regression.compare_runs(baseline_run,
                                               slowed(baseline_run, 10.0))
        by_name = {delta.name: delta for delta in deltas}
        assert not by_name["entropy_encode.baseline"].gated
        assert not by_name["entropy_encode.baseline"].failed

    def test_noise_floor_skips_tiny_timings(self, baseline_run):
        deltas = check_regression.compare_runs(baseline_run,
                                               slowed(baseline_run))
        by_name = {delta.name: delta for delta in deltas}
        assert not by_name["prepare_dataset.warm_cached"].gated
        assert not by_name["entropy_encode.optimised"].gated
        # Lowering the floor brings them into the gate.
        strict = check_regression.compare_runs(
            baseline_run, slowed(baseline_run), min_seconds=1e-6)
        by_name = {delta.name: delta for delta in strict}
        assert by_name["prepare_dataset.warm_cached"].failed

    def test_within_tolerance_passes(self, baseline_run):
        deltas = check_regression.compare_runs(baseline_run,
                                               slowed(baseline_run, 1.2))
        assert not any(delta.failed for delta in deltas)

    def test_per_section_tolerance_override(self, baseline_run):
        worse = slowed(baseline_run, 1.5)
        default = check_regression.compare_runs(baseline_run, worse)
        assert any(delta.failed and delta.section == "scheduler_event_loop"
                   for delta in default)
        relaxed = check_regression.compare_runs(
            baseline_run, worse, tolerances={"scheduler_event_loop": 0.8})
        assert not any(delta.failed and delta.section == "scheduler_event_loop"
                       for delta in relaxed)

    def test_exact_entry_name_tolerance_beats_section(self, baseline_run):
        """A full-entry-name override wins over its section's tolerance —
        how the CI gates give an absolute `.optimised` wall-clock a wide
        allowance while the sibling `.speedup` ratio stays tight."""
        worse = slowed(baseline_run, 1.5)
        relaxed = check_regression.compare_runs(
            baseline_run, worse,
            tolerances={"entropy_encode": 0.1,
                        "entropy_encode.optimised": 2.0})
        by_name = {delta.name: delta for delta in relaxed}
        assert not by_name["entropy_encode.optimised"].failed
        assert by_name["entropy_encode.optimised"].tolerance == 2.0
        assert by_name["entropy_encode.speedup"].failed

    def test_improvements_never_fail(self, baseline_run):
        deltas = check_regression.compare_runs(baseline_run,
                                               slowed(baseline_run, 0.25))
        assert not any(delta.failed for delta in deltas)

    def test_entries_missing_from_either_side_are_ignored(self, baseline_run):
        current = make_run(BASELINE_ENTRIES + [("brand_new", 1.0, "seconds")])
        deltas = check_regression.compare_runs(baseline_run, current)
        assert "brand_new" not in {delta.name for delta in deltas}


class TestMarkdownRendering:
    def test_table_carries_deltas_and_verdict(self, baseline_run):
        deltas = check_regression.compare_runs(baseline_run,
                                               slowed(baseline_run))
        markdown = check_regression.render_markdown(deltas, "hotpaths")
        assert "| status | metric |" in markdown
        assert "❌ regressed" in markdown
        assert "`scheduler_event_loop`" in markdown
        assert "regressed beyond" in markdown

    def test_green_table_says_so(self, baseline_run):
        deltas = check_regression.compare_runs(baseline_run, baseline_run)
        markdown = check_regression.render_markdown(deltas, "hotpaths")
        assert "All gated measurements within tolerance." in markdown
        assert "❌" not in markdown


class TestMainEntryPoint:
    def write(self, path, runs):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(runs, handle)

    def test_exit_codes(self, tmp_path, baseline_run, capsys, monkeypatch):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_path = tmp_path / "baseline.json"
        green_path = tmp_path / "green.json"
        red_path = tmp_path / "red.json"
        self.write(baseline_path, [baseline_run])
        self.write(green_path, [baseline_run, baseline_run])
        self.write(red_path, [slowed(baseline_run)])
        assert check_regression.main(["--baseline", str(baseline_path),
                                      "--current", str(green_path)]) == 0
        assert check_regression.main(["--baseline", str(baseline_path),
                                      "--current", str(red_path)]) == 1
        assert "Perf gate" in capsys.readouterr().out

    def test_latest_run_is_compared(self, tmp_path, baseline_run, monkeypatch):
        """Bench files accumulate runs; only the newest record gates."""
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        self.write(baseline_path, [baseline_run])
        # An old red run followed by a fresh green one must pass.
        self.write(current_path, [slowed(baseline_run), baseline_run])
        assert check_regression.main(["--baseline", str(baseline_path),
                                      "--current", str(current_path)]) == 0

    def test_github_step_summary_appended(self, tmp_path, baseline_run,
                                          monkeypatch, capsys):
        summary_path = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary_path))
        baseline_path = tmp_path / "baseline.json"
        self.write(baseline_path, [baseline_run])
        check_regression.main(["--baseline", str(baseline_path),
                               "--current", str(baseline_path)])
        capsys.readouterr()
        assert "Perf gate" in summary_path.read_text()

    def test_tolerance_option_parsing(self):
        parsed = check_regression.parse_tolerances(
            ["entropy_encode=0.5", "nn_inference=0.8"])
        assert parsed == {"entropy_encode": 0.5, "nn_inference": 0.8}
        with pytest.raises(Exception):
            check_regression.parse_tolerances(["bogus"])

    def test_empty_bench_file_is_an_error(self, tmp_path):
        path = tmp_path / "empty.json"
        self.write(path, [])
        with pytest.raises(ValueError):
            check_regression.latest_run(str(path))

    def test_required_section_present_passes(self, tmp_path, baseline_run,
                                             monkeypatch, capsys):
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_path = tmp_path / "baseline.json"
        self.write(baseline_path, [baseline_run])
        assert check_regression.main([
            "--baseline", str(baseline_path),
            "--current", str(baseline_path),
            "--require", "scheduler_event_loop",
            "--require", "build_workloads"]) == 0
        capsys.readouterr()

    def test_required_section_missing_fails(self, tmp_path, baseline_run,
                                            monkeypatch, capsys):
        """A contract section that fell out of the comparison (renamed or
        dropped entry) must fail the gate, not pass vacuously."""
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        self.write(baseline_path, [baseline_run])
        renamed = make_run([
            (name.replace("build_workloads", "workload_build"), value, unit)
            for name, value, unit in BASELINE_ENTRIES])
        self.write(current_path, [renamed])
        assert check_regression.main([
            "--baseline", str(baseline_path),
            "--current", str(current_path),
            "--require", "build_workloads"]) == 1
        assert "build_workloads" in capsys.readouterr().err

    def test_required_full_entry_name_catches_section_survivors(
            self, tmp_path, baseline_run, monkeypatch, capsys):
        """Renaming one entry of a multi-entry section keeps the section
        in the comparison, so only a full-entry-name pin catches it."""
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        self.write(baseline_path, [baseline_run])
        renamed = make_run([
            (name.replace("entropy_encode.speedup",
                          "entropy_encode.speed_up"), value, unit)
            for name, value, unit in BASELINE_ENTRIES])
        self.write(current_path, [renamed])
        # Section-level require stays green: .optimised still gates under
        # the entropy_encode section even though the ratio contract fell
        # out of the comparison...
        assert check_regression.main([
            "--baseline", str(baseline_path),
            "--current", str(current_path),
            "--min-seconds", "1e-6",
            "--require", "entropy_encode"]) == 0
        # ...the full entry name catches exactly that.
        assert check_regression.main([
            "--baseline", str(baseline_path),
            "--current", str(current_path),
            "--min-seconds", "1e-6",
            "--require", "entropy_encode.speedup"]) == 1
        assert "entropy_encode.speedup" in capsys.readouterr().err

    def test_required_section_must_be_gated_not_just_present(
            self, tmp_path, baseline_run, monkeypatch, capsys):
        """An entry that exists but is skipped (below the noise floor,
        reference probe) does not satisfy ``--require``."""
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_path = tmp_path / "baseline.json"
        self.write(baseline_path, [baseline_run])
        # prepare_dataset.warm_cached sits below the 0.005s noise floor.
        assert check_regression.main([
            "--baseline", str(baseline_path),
            "--current", str(baseline_path),
            "--require", "prepare_dataset"]) == 1
        assert "prepare_dataset" in capsys.readouterr().err

    def test_gate_fails_when_nothing_is_gated(self, tmp_path, baseline_run,
                                              monkeypatch, capsys):
        """Renamed entries (empty intersection) must fail loudly, not pass
        vacuously with the gate silently disabled."""
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        renamed = make_run([(f"new.{name}", value, unit)
                            for name, value, unit in BASELINE_ENTRIES])
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        self.write(baseline_path, [baseline_run])
        self.write(current_path, [renamed])
        assert check_regression.main(["--baseline", str(baseline_path),
                                      "--current", str(current_path)]) == 1
        assert "no gated measurements" in capsys.readouterr().err
