"""Worker-count resolution honours the CPU affinity mask.

Regression: auto worker sizing (``workers=0``) used to read
``os.cpu_count()``, which reports every CPU in the machine — inside a
container restricted to a cpuset (or under ``taskset``), that
over-subscribes the pool.  :func:`repro.config.available_cpu_count` now
prefers ``len(os.sched_getaffinity(0))`` and only falls back to
``os.cpu_count()`` (then ``1``) when the affinity mask is unavailable.
"""

from __future__ import annotations

import os

import pytest

from repro.config import available_cpu_count, resolve_worker_count
from repro.errors import ConfigurationError


class TestAvailableCpuCount:
    def test_prefers_affinity_mask_over_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert available_cpu_count() == 2

    def test_falls_back_when_affinity_is_absent(self, monkeypatch):
        # macOS/Windows: os has no sched_getaffinity at all.
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert available_cpu_count() == 6

    def test_falls_back_when_affinity_raises(self, monkeypatch):
        def broken(pid):
            raise OSError("no affinity support")

        monkeypatch.setattr(os, "sched_getaffinity", broken, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert available_cpu_count() == 4

    def test_falls_back_when_affinity_is_empty(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set(),
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert available_cpu_count() == 3

    def test_last_resort_is_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert available_cpu_count() == 1

    def test_matches_this_machine(self):
        count = available_cpu_count()
        assert count >= 1
        if hasattr(os, "sched_getaffinity"):
            assert count == len(os.sched_getaffinity(0))


class TestResolveWorkerCount:
    def test_zero_resolves_to_available_cpus(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2},
                            raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert resolve_worker_count(0, "fleet_workers") == 3

    def test_positive_passes_through(self):
        assert resolve_worker_count(5, "fleet_workers") == 5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_worker_count(-1, "fleet_workers")
