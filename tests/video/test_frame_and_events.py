"""Tests for frames, resolutions and event timelines."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.video import (Event, EventTimeline, Frame, FrameType, NO_LABEL, Resolution,
                         as_label_set)


class TestResolution:
    def test_properties(self):
        resolution = Resolution(1920, 1080)
        assert resolution.pixels == 1920 * 1080
        assert resolution.shape == (1080, 1920)
        assert resolution.label == "1080p"
        assert str(resolution) == "1920x1080"

    def test_scaled_has_minimum(self):
        assert Resolution(100, 100).scaled(0.01) == Resolution(16, 16)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            Resolution(0, 10)


class TestFrame:
    def test_grayscale_passthrough(self):
        data = np.arange(12, dtype=np.uint8).reshape(3, 4)
        frame = Frame(index=0, data=data)
        assert not frame.is_color
        assert frame.resolution == Resolution(4, 3)
        assert np.allclose(frame.to_grayscale(), data)

    def test_color_luma_weights(self):
        data = np.zeros((2, 2, 3), dtype=np.uint8)
        data[..., 1] = 100  # pure green
        frame = Frame(index=0, data=data)
        assert frame.is_color
        assert np.allclose(frame.to_grayscale(), 58.7)

    def test_clipping_of_float_input(self):
        frame = Frame(index=0, data=np.array([[300.0, -5.0]]))
        assert frame.data.dtype == np.uint8
        assert frame.data[0, 0] == 255 and frame.data[0, 1] == 0

    def test_with_type_and_copy(self):
        frame = Frame(index=3, data=np.zeros((4, 4)))
        key = frame.with_type(FrameType.I)
        assert key.frame_type is FrameType.I and key.index == 3
        clone = frame.copy()
        clone.data[0, 0] = 9
        assert frame.data[0, 0] == 0

    def test_invalid_shapes(self):
        with pytest.raises(ConfigurationError):
            Frame(index=0, data=np.zeros((2, 2, 4)))
        with pytest.raises(ConfigurationError):
            Frame(index=-1, data=np.zeros((2, 2)))

    def test_frame_type_is_key(self):
        assert FrameType.I.is_key and not FrameType.P.is_key


class TestEvent:
    def test_basic(self):
        event = Event(0, 10, {"car"})
        assert event.num_frames == 10
        assert event.contains(9) and not event.contains(10)
        assert not event.is_background

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            Event(5, 5)


class TestEventTimeline:
    def test_from_frame_labels_compresses_runs(self):
        labels = [set()] * 3 + [{"car"}] * 4 + [set()] * 3
        timeline = EventTimeline.from_frame_labels(labels)
        assert timeline.num_events == 3
        assert timeline.num_frames == 10
        assert timeline.event_start_frames == [0, 3, 7]
        assert timeline.labels_at(4) == frozenset({"car"})
        assert timeline.labels_at(9) == NO_LABEL

    def test_adjacent_same_labels_merged(self):
        timeline = EventTimeline([Event(0, 5, set()), Event(5, 10, set())])
        assert timeline.num_events == 1

    def test_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            EventTimeline([Event(0, 5), Event(6, 10, {"car"})])

    def test_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            EventTimeline([Event(1, 5)])

    def test_event_at_binary_search(self):
        labels = [set()] * 5 + [{"a"}] * 5 + [{"b"}] * 5
        timeline = EventTimeline.from_frame_labels(labels)
        assert timeline.event_at(0).labels == NO_LABEL
        assert timeline.event_at(7).labels == frozenset({"a"})
        assert timeline.event_at(14).labels == frozenset({"b"})
        with pytest.raises(ConfigurationError):
            timeline.event_at(15)

    def test_frame_labels_roundtrip(self):
        labels = [frozenset()] * 2 + [frozenset({"car"})] * 3 + [frozenset()] * 2
        timeline = EventTimeline.from_frame_labels(labels)
        assert timeline.frame_labels() == labels

    def test_sliced_rebases_indices(self):
        labels = [set()] * 4 + [{"car"}] * 4 + [set()] * 4
        window = EventTimeline.from_frame_labels(labels).sliced(2, 10)
        assert window.num_frames == 8
        assert window.labels_at(0) == NO_LABEL
        assert window.labels_at(3) == frozenset({"car"})

    def test_object_labels_union(self):
        labels = [{"car"}] * 2 + [{"bus", "car"}] * 2
        timeline = EventTimeline.from_frame_labels(labels)
        assert timeline.object_labels == {"car", "bus"}

    def test_equality(self):
        a = EventTimeline.from_frame_labels([set(), {"x"}])
        b = EventTimeline.from_frame_labels([set(), {"x"}])
        assert a == b

    @given(st.lists(st.sampled_from([frozenset(), frozenset({"car"}),
                                     frozenset({"car", "bus"})]),
                    min_size=1, max_size=60))
    def test_property_roundtrip_and_coverage(self, labels):
        timeline = EventTimeline.from_frame_labels(labels)
        # Per-frame expansion reproduces the input exactly.
        assert timeline.frame_labels() == [as_label_set(l) for l in labels]
        # Events cover the video contiguously and adjacent events differ.
        events = timeline.events
        assert events[0].start_frame == 0
        assert events[-1].end_frame == len(labels)
        for earlier, later in zip(events, events[1:]):
            assert earlier.end_frame == later.start_frame
            assert earlier.labels != later.labels
