"""Registry coverage and the seed-forwarding contract of make_scenario.

The seed override must reach the scenario *constructor* — not be patched
onto the profile afterwards — because schedule generation and every
derived RNG stream key off the seed the constructor bakes in.  The probe
test below fails on any implementation that builds the profile first and
applies ``with_seed`` after the fact.
"""

import pytest

from repro.errors import DatasetError
from repro.video.scenarios import (LABELLED_SCENARIOS, SCENARIOS,
                                   UNLABELLED_SCENARIOS, all_scenarios,
                                   make_scenario)
from repro.video.synthetic import SyntheticScene, generate_script

DURATION = 30.0
SCALE = 0.05


class TestSeedForwarding:
    def test_seed_is_passed_into_the_constructor(self, monkeypatch):
        received = {}

        def probe(duration_seconds, render_scale, seed=99):
            received["seed"] = seed
            return make_scenario("highway", duration_seconds, render_scale,
                                 seed=seed)

        monkeypatch.setitem(SCENARIOS, "probe_scenario", probe)
        profile = make_scenario("probe_scenario", DURATION, SCALE, seed=4321)
        assert received["seed"] == 4321
        assert profile.seed == 4321

    def test_omitted_seed_keeps_the_constructor_default(self, monkeypatch):
        received = {}

        def probe(duration_seconds, render_scale, seed=99):
            received["seed"] = seed
            return make_scenario("highway", duration_seconds, render_scale,
                                 seed=seed)

        monkeypatch.setitem(SCENARIOS, "probe_scenario", probe)
        make_scenario("probe_scenario", DURATION, SCALE)
        assert received["seed"] == 99

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_distinct_seeds_yield_distinct_schedules(self, name):
        first = make_scenario(name, DURATION, SCALE, seed=101)
        second = make_scenario(name, DURATION, SCALE, seed=202)
        assert first.seed == 101 and second.seed == 202
        script_a = generate_script(first)
        script_b = generate_script(second)
        assert script_a.tracks, f"{name}: seed 101 scheduled no events"
        assert script_b.tracks, f"{name}: seed 202 scheduled no events"
        assert script_a.tracks != script_b.tracks, (
            f"{name}: the seed override never reached schedule generation")


class TestRegistryCoverage:
    def test_all_scenarios_round_trips_the_registry(self):
        profiles = all_scenarios(duration_seconds=4.0, render_scale=SCALE)
        assert set(profiles) == set(SCENARIOS)
        for name, profile in profiles.items():
            script = generate_script(profile)
            assert script.num_frames == profile.num_frames
            frame = SyntheticScene(profile).frame_array(0)
            assert frame.shape == (profile.resolution.height,
                                   profile.resolution.width)
            assert frame.dtype.name == "uint8"

    def test_unknown_name_error_lists_every_valid_name(self):
        with pytest.raises(DatasetError) as excinfo:
            make_scenario("nowhere_at_all")
        message = str(excinfo.value)
        for name in SCENARIOS:
            assert name in message

    def test_labelled_and_unlabelled_are_registered(self):
        assert set(LABELLED_SCENARIOS) <= set(SCENARIOS)
        assert set(UNLABELLED_SCENARIOS) <= set(SCENARIOS)
        assert not set(LABELLED_SCENARIOS) & set(UNLABELLED_SCENARIOS)

    def test_composed_entries_share_their_base_name(self):
        composed = [name for name in SCENARIOS if "+" in name]
        assert composed, "builtin composed specs should be registered"
        for spec in composed:
            profile = make_scenario(spec, duration_seconds=4.0,
                                    render_scale=SCALE)
            assert profile.name == spec.split("+")[0]
