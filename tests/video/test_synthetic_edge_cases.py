"""Edge-case regressions in the synthetic renderer.

Each test here pins a specific bug: a redundant background copy on every
rendered frame, a degenerate one-frame clip crashing downstream consumers
that assume at least two frames, and a single-frame object visit whose
trajectory interpolation divided by zero (or, once patched naively,
parked the object off-frame where clipping deleted its box).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.video.frame import Resolution
from repro.video.scenarios import make_scenario
from repro.video.synthetic import ObjectClassSpec, ObjectTrack, SceneProfile, SyntheticScene


class CountingArray(np.ndarray):
    """ndarray view that counts explicit ``.copy()`` calls."""

    copies = 0

    def copy(self, order="C"):
        type(self).copies += 1
        return super().copy(order)


class TestNoRedundantCopy:
    def test_frame_array_never_copies_the_background(self):
        profile = make_scenario("highway", duration_seconds=4.0,
                                render_scale=0.05)
        scene = SyntheticScene(profile)
        scene._background = scene._background.view(CountingArray)
        CountingArray.copies = 0
        scene.frame_array(0)
        scene.frame_array(profile.num_frames // 2)
        assert CountingArray.copies == 0, (
            "frame_array copied the cached background; the broadcast add "
            "already allocates a fresh frame")

    def test_rendering_leaves_the_cached_background_untouched(self):
        profile = make_scenario("highway", duration_seconds=4.0,
                                render_scale=0.05)
        scene = SyntheticScene(profile)
        before = scene._background.copy()
        for index in range(0, profile.num_frames, 13):
            scene.frame_array(index)
        assert np.array_equal(scene._background, before)


class TestDegenerateDuration:
    def _profile(self, duration_seconds):
        return SceneProfile(
            name="tiny",
            resolution=Resolution(64, 36),
            fps=30.0,
            duration_seconds=duration_seconds,
            object_classes=((ObjectClassSpec("car", 0.3), 1.0),),
        )

    def test_one_frame_clip_is_rejected(self):
        with pytest.raises(ConfigurationError, match="at least 2 frames"):
            self._profile(1.0 / 30.0)

    def test_two_frame_clip_is_allowed_and_renders(self):
        profile = self._profile(2.0 / 30.0)
        assert profile.num_frames == 2
        scene = SyntheticScene(profile)
        for index in range(profile.num_frames):
            frame = scene.frame_array(index)
            assert frame.shape == (36, 64)


class TestSingleFrameVisit:
    def test_single_frame_track_stays_on_screen(self):
        track = ObjectTrack(
            label="car",
            spec=ObjectClassSpec("car", relative_height=0.3, aspect_ratio=2.0),
            enter_frame=5,
            exit_frame=6,
            lane_fraction=0.5,
            direction=1,
            brightness=80.0,
        )
        resolution = Resolution(64, 36)
        box = track.bounding_box(5, resolution)
        assert box is not None, (
            "a one-frame visit must still place the object on screen")
        x0, y0, x1, y1 = box
        assert 0 <= x0 < x1 <= resolution.width
        assert 0 <= y0 < y1 <= resolution.height
        # progress 0.5 puts the centre mid-crossing, i.e. near frame centre.
        centre = (x0 + x1) / 2
        assert abs(centre - resolution.width / 2) <= resolution.width / 4

    def test_single_frame_track_is_invisible_outside_its_frame(self):
        track = ObjectTrack(
            label="car",
            spec=ObjectClassSpec("car", relative_height=0.3, aspect_ratio=2.0),
            enter_frame=5,
            exit_frame=6,
            lane_fraction=0.5,
            direction=-1,
            brightness=80.0,
        )
        resolution = Resolution(64, 36)
        assert track.bounding_box(4, resolution) is None
        assert track.bounding_box(6, resolution) is None
