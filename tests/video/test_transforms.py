"""The scenario-transform DSL: no-op defaults, composition, orthogonality."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.video.scenarios import SCENARIOS, make_scenario
from repro.video.synthetic import SyntheticScene, generate_script
from repro.video.transforms import (BUILTIN_COMPOSED_SPECS,
                                    TRANSFORM_FACTORIES, TRANSFORMS,
                                    ScenarioTransform, apply_transforms,
                                    compose, compose_spec, parse_spec,
                                    register_composed)

DURATION = 4.0
SCALE = 0.05


def baseline_profile(name="night"):
    return make_scenario(name, duration_seconds=DURATION, render_scale=SCALE)


class TestNoOpDefaults:
    """Every factory's default is an *exact* no-op — the DSL's core contract."""

    @pytest.mark.parametrize("name", sorted(TRANSFORM_FACTORIES))
    def test_default_leaves_the_profile_equal(self, name):
        profile = baseline_profile()
        assert TRANSFORM_FACTORIES[name]()(profile) == profile

    @pytest.mark.parametrize("name", sorted(TRANSFORM_FACTORIES))
    def test_default_renders_bit_identically(self, name):
        profile = baseline_profile("jackson_square")
        reference = SyntheticScene(profile)
        transformed = SyntheticScene(TRANSFORM_FACTORIES[name]()(profile))
        for index in (0, profile.num_frames // 2, profile.num_frames - 1):
            assert np.array_equal(reference.frame_array(index),
                                  transformed.frame_array(index))

    def test_every_preset_is_a_factory_too(self):
        assert set(TRANSFORMS) == set(TRANSFORM_FACTORIES)

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_presets_are_not_noops(self, name):
        profile = baseline_profile()
        assert TRANSFORMS[name]()(profile) != profile


class TestTransformEffects:
    @pytest.mark.parametrize("name", sorted(
        set(TRANSFORMS) - {"crowd"}))
    def test_pixel_presets_change_the_rendering(self, name):
        profile = baseline_profile("highway")
        transformed = TRANSFORMS[name]()(profile)
        reference = SyntheticScene(profile)
        scene = SyntheticScene(transformed)
        # Sparse effects (a 0.08 dropout rate) touch only a few frames, so
        # scan them all before declaring a preset inert.
        changed = any(
            not np.array_equal(reference.frame_array(index),
                               scene.frame_array(index))
            for index in range(1, profile.num_frames))
        assert changed, f"preset {name!r} rendered bit-identically"

    @pytest.mark.parametrize("name", sorted(
        set(TRANSFORMS) - {"crowd"}))
    def test_pixel_presets_keep_the_schedule(self, name):
        # Weather and camera faults are orthogonal to the event structure:
        # the same traffic crosses the frame, whatever falls from the sky.
        profile = baseline_profile("highway")
        transformed = TRANSFORMS[name]()(profile)
        assert (generate_script(profile).tracks
                == generate_script(transformed).tracks)

    def test_crowd_preset_changes_the_schedule(self):
        profile = baseline_profile("highway")
        crowded = TRANSFORMS["crowd"]()(profile)
        assert crowded.mean_gap_seconds < profile.mean_gap_seconds
        assert crowded.max_concurrent_objects > profile.max_concurrent_objects
        assert (generate_script(crowded).tracks
                != generate_script(profile).tracks)

    def test_transforms_may_not_rename_the_profile(self):
        from dataclasses import replace
        bad = ScenarioTransform(
            "bad", lambda profile: replace(profile, name="renamed"))
        with pytest.raises(DatasetError, match="renamed the profile"):
            bad(baseline_profile())

    def test_dropout_repeats_frames_bit_exactly(self):
        from repro.video.transforms import dropout
        profile = dropout(0.4)(baseline_profile("highway"))
        scene = SyntheticScene(profile)
        delivered = scene._delivered
        assert delivered is not None and delivered[0] == 0
        repeated = [index for index in range(1, profile.num_frames)
                    if delivered[index] != index]
        assert repeated, "a 0.4 dropout rate dropped nothing"
        for index in repeated[:3]:
            assert np.array_equal(scene.frame_array(index),
                                  scene.frame_array(delivered[index]))


class TestComposition:
    def test_compose_applies_presets_and_forwards_seed(self):
        constructor = compose("highway", "rain", "night_cycle")
        profile = constructor(duration_seconds=DURATION, render_scale=SCALE,
                              seed=123)
        assert profile.name == "highway"
        assert profile.seed == 123
        assert profile.rain_intensity > 0
        assert profile.night_cycle_amplitude > 0

    def test_compose_rejects_unknown_transforms(self):
        with pytest.raises(DatasetError, match="unknown transform"):
            compose("highway", "sharknado")

    def test_compose_rejects_unknown_base_at_build_time(self):
        constructor = compose("atlantis", "rain")
        with pytest.raises(DatasetError, match="unknown base scenario"):
            constructor(duration_seconds=DURATION, render_scale=SCALE)

    def test_parse_spec_roundtrip(self):
        base, names = parse_spec("night + snow + dropout")
        assert base == "night"
        assert names == ("snow", "dropout")
        with pytest.raises(DatasetError, match="empty base"):
            parse_spec("+rain")
        with pytest.raises(DatasetError, match="unknown transform"):
            parse_spec("night+blizzard")

    def test_make_scenario_accepts_unregistered_specs(self):
        before = set(SCENARIOS)
        profile = make_scenario("venice+fog+sensor_jitter",
                                duration_seconds=DURATION,
                                render_scale=SCALE, seed=9)
        assert profile.name == "venice"
        assert profile.fog_density > 0
        assert profile.sensor_jitter_px > 0
        assert profile.seed == 9
        assert set(SCENARIOS) == before, (
            "on-the-fly specs must not mutate the registry")

    def test_builtin_composed_specs_are_registered(self):
        for spec in BUILTIN_COMPOSED_SPECS:
            assert spec in SCENARIOS
            profile = make_scenario(spec, duration_seconds=DURATION,
                                    render_scale=SCALE)
            base = parse_spec(spec)[0]
            assert profile.name == base
            assert profile.num_frames == make_scenario(
                base, duration_seconds=DURATION,
                render_scale=SCALE).num_frames

    def test_register_composed_rejects_duplicates(self):
        with pytest.raises(DatasetError, match="already registered"):
            register_composed(BUILTIN_COMPOSED_SPECS[0])

    def test_apply_transforms_is_left_to_right(self):
        from repro.video.transforms import crowd
        profile = baseline_profile("highway")
        halved_then_doubled = apply_transforms(
            profile, crowd(gap_factor=0.5), crowd(gap_factor=2.0))
        assert halved_then_doubled.mean_gap_seconds == pytest.approx(
            profile.mean_gap_seconds)

    def test_compose_spec_equals_compose(self):
        via_spec = compose_spec("night+snow")(
            duration_seconds=DURATION, render_scale=SCALE, seed=3)
        via_args = compose("night", "snow")(
            duration_seconds=DURATION, render_scale=SCALE, seed=3)
        assert via_spec == via_args
