"""Tests for video containers, the synthetic scene generator and scenarios."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DatasetError
from repro.video import (ObjectClassSpec, RawVideo, Resolution,
                         SceneProfile, SyntheticScene, VideoMetadata,
                         generate_script, make_scenario, SCENARIOS,
                         LABELLED_SCENARIOS)


class TestRawVideo:
    def test_from_arrays(self, rng):
        arrays = [rng.integers(0, 255, size=(8, 10), dtype=np.uint8) for _ in range(5)]
        video = RawVideo.from_arrays("clip", arrays, fps=10.0)
        assert len(video) == 5
        assert video.metadata.resolution == Resolution(10, 8)
        assert video.metadata.duration_seconds == pytest.approx(0.5)
        assert video.frame(3).index == 3

    def test_mismatched_resolution_rejected(self):
        arrays = [np.zeros((8, 10), dtype=np.uint8), np.zeros((8, 12), dtype=np.uint8)]
        with pytest.raises(ConfigurationError):
            RawVideo.from_arrays("clip", arrays)

    def test_slicing_reindexes(self, rng):
        arrays = [rng.integers(0, 255, size=(8, 8), dtype=np.uint8) for _ in range(6)]
        video = RawVideo.from_arrays("clip", arrays, fps=30.0)
        window = video.sliced(2, 5)
        assert len(window) == 3
        assert [frame.index for frame in window.frames()] == [0, 1, 2]
        assert np.array_equal(window.frame(0).data, arrays[2])

    def test_metadata_validation(self):
        with pytest.raises(ConfigurationError):
            VideoMetadata("x", Resolution(4, 4), fps=0, num_frames=5)


class TestGeneratedVideo:
    def test_lazy_frames_deterministic(self, tiny_video):
        frame_a = tiny_video.frame(7).data.copy()
        frame_b = tiny_video.frame(7).data.copy()
        assert np.array_equal(frame_a, frame_b)

    def test_materialise_matches_lazy(self, tiny_video):
        materialised = tiny_video.materialise()
        assert np.array_equal(materialised.frame(5).data, tiny_video.frame(5).data)
        assert materialised.timeline == tiny_video.timeline

    def test_out_of_range(self, tiny_video):
        with pytest.raises(ConfigurationError):
            tiny_video.frame(tiny_video.metadata.num_frames)


class TestSyntheticScene:
    def test_script_matches_timeline(self, tiny_scene, tiny_timeline):
        assert tiny_scene.script.timeline() == tiny_timeline
        assert tiny_timeline.num_frames == tiny_scene.profile.num_frames

    def test_objects_actually_visible(self, tiny_scene):
        """Frames inside an object event differ from the background frame."""
        timeline = tiny_scene.script.timeline()
        object_events = [event for event in timeline if not event.is_background]
        assert object_events, "the tiny scene should contain at least one object"
        event = object_events[0]
        middle = (event.start_frame + event.end_frame) // 2
        background_frame = None
        for candidate in timeline:
            if candidate.is_background:
                background_frame = candidate.start_frame
                break
        difference = np.abs(tiny_scene.frame_array(middle).astype(float)
                            - tiny_scene.frame_array(background_frame).astype(float))
        assert (difference > 25).sum() > 20

    def test_background_static_up_to_noise(self, tiny_scene):
        timeline = tiny_scene.script.timeline()
        background = next(event for event in timeline if event.is_background)
        if background.num_frames < 2:
            pytest.skip("background event too short")
        first = tiny_scene.frame_array(background.start_frame).astype(float)
        second = tiny_scene.frame_array(background.start_frame + 1).astype(float)
        # Only sensor noise and illumination drift separate the two frames.
        assert np.abs(first - second).max() < 25

    def test_color_rendering(self, tiny_profile):
        scene = SyntheticScene(tiny_profile, as_color=True)
        frame = scene.frame_array(0)
        assert frame.ndim == 3 and frame.shape[2] == 3

    def test_generate_script_respects_concurrency(self, tiny_profile):
        script = generate_script(tiny_profile)
        for frame_index in range(tiny_profile.num_frames):
            assert len(script.visible_tracks(frame_index)) <= \
                tiny_profile.max_concurrent_objects

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            ObjectClassSpec("car", relative_height=0.0)
        with pytest.raises(ConfigurationError):
            SceneProfile(name="x", resolution=Resolution(32, 32), fps=0,
                         duration_seconds=1.0,
                         object_classes=((ObjectClassSpec("car", 0.3), 1.0),))

    def test_profile_copies(self, tiny_profile):
        longer = tiny_profile.with_duration(40.0)
        assert longer.num_frames == 2 * tiny_profile.num_frames
        reseeded = tiny_profile.with_seed(99)
        assert reseeded.seed == 99 and reseeded.name == tiny_profile.name
        scaled = tiny_profile.scaled(0.5)
        assert scaled.resolution.width == tiny_profile.resolution.width // 2


class TestScenarios:
    def test_all_scenarios_construct(self):
        for name in SCENARIOS:
            profile = make_scenario(name, duration_seconds=10, render_scale=0.05)
            assert profile.num_frames == 300
            assert profile.resolution.pixels >= 16 * 16

    def test_labelled_scenarios_have_expected_objects(self):
        labels = {
            "jackson_square": {"car", "bus", "truck"},
            "coral_reef": {"person"},
            "venice": {"boat"},
        }
        for name in LABELLED_SCENARIOS:
            profile = make_scenario(name, duration_seconds=10, render_scale=0.05)
            observed = {spec.label for spec, _ in profile.object_classes}
            assert observed == labels[name]

    def test_object_size_ordering_matches_paper(self):
        """Jackson square objects are close-up (big); Venice boats are distant."""
        jackson = make_scenario("jackson_square", duration_seconds=10)
        venice = make_scenario("venice", duration_seconds=10)
        jackson_height = max(spec.relative_height for spec, _ in jackson.object_classes)
        venice_height = max(spec.relative_height for spec, _ in venice.object_classes)
        assert jackson_height > 3 * venice_height

    def test_unknown_scenario(self):
        with pytest.raises(DatasetError):
            make_scenario("nowhere")

    def test_seed_override_changes_schedule(self):
        a = SyntheticScene(make_scenario("jackson_square", 20, 0.05, seed=1)).script
        b = SyntheticScene(make_scenario("jackson_square", 20, 0.05, seed=2)).script
        assert [t.enter_frame for t in a.tracks] != [t.enter_frame for t in b.tracks]
