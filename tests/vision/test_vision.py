"""Tests for image operations and the MSE / SIFT change detectors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.vision import (MseChangeDetector, SiftChangeDetector, SiftLite,
                          ThresholdSampler, downsample, gaussian_blur, gradients,
                          mean_squared_error, normalize_plane, resize,
                          sampled_fraction, score_video,
                          threshold_for_sampling_fraction, to_grayscale)


class TestImageOps:
    def test_to_grayscale_shapes(self, rng):
        gray = rng.integers(0, 255, size=(6, 7))
        color = rng.integers(0, 255, size=(6, 7, 3))
        assert to_grayscale(gray).shape == (6, 7)
        assert to_grayscale(color).shape == (6, 7)
        with pytest.raises(ConfigurationError):
            to_grayscale(np.zeros((2, 2, 2)))

    def test_resize_identity_and_scaling(self, rng):
        image = rng.integers(0, 255, size=(20, 30), dtype=np.uint8)
        assert np.array_equal(resize(image, (30, 20)), image)
        smaller = resize(image, (15, 10))
        assert smaller.shape == (10, 15)
        assert smaller.dtype == np.uint8

    def test_resize_preserves_constant(self):
        image = np.full((11, 17), 42.0)
        assert np.allclose(resize(image, (40, 23)), 42.0)

    def test_gaussian_blur_preserves_mean(self, rng):
        plane = rng.uniform(0, 255, size=(32, 32))
        blurred = gaussian_blur(plane, 1.5)
        assert blurred.shape == plane.shape
        assert blurred.mean() == pytest.approx(plane.mean(), rel=0.02)
        assert blurred.std() < plane.std()

    def test_gradients_of_ramp(self):
        ramp = np.tile(np.arange(10.0), (8, 1))
        dy, dx = gradients(ramp)
        assert np.allclose(dx[:, 1:-1], 1.0)
        assert np.allclose(dy[1:-1, :], 0.0)

    def test_downsample_block_average(self):
        plane = np.arange(16.0).reshape(4, 4)
        small = downsample(plane, 2)
        assert small.shape == (2, 2)
        assert small[0, 0] == pytest.approx(plane[:2, :2].mean())

    def test_normalize_plane(self, rng):
        plane = rng.uniform(0, 255, size=(16, 16))
        normalized = normalize_plane(plane)
        assert normalized.mean() == pytest.approx(0.0, abs=1e-9)
        assert normalized.std() == pytest.approx(1.0, rel=1e-6)
        assert np.allclose(normalize_plane(np.full((4, 4), 7.0)), 0.0)

    def test_mse(self):
        assert mean_squared_error(np.zeros((3, 3)), np.full((3, 3), 2.0)) == 4.0
        with pytest.raises(ConfigurationError):
            mean_squared_error(np.zeros((2, 2)), np.zeros((3, 3)))


class TestMseDetector:
    def test_first_frame_scores_infinite(self):
        detector = MseChangeDetector()
        assert detector.score_next(np.zeros((8, 8))) == float("inf")
        assert detector.score_next(np.zeros((8, 8))) == 0.0

    def test_change_detected(self, rng):
        detector = MseChangeDetector()
        background = rng.uniform(60, 200, size=(20, 20))
        detector.score_next(background)
        modified = background.copy()
        modified[5:15, 5:15] += 80
        assert detector.score_next(modified) > 100.0

    def test_downsampling_variant(self, rng):
        detector = MseChangeDetector(downsample_factor=2)
        plane = rng.uniform(0, 255, size=(16, 16))
        detector.score_next(plane)
        assert detector.score_next(plane) == pytest.approx(0.0)

    def test_score_video_series(self, tiny_video):
        scores = score_video(MseChangeDetector(), tiny_video)
        assert len(scores) == tiny_video.metadata.num_frames
        assert scores[0] == float("inf")
        assert all(score >= 0 for score in scores[1:])


class TestSift:
    def test_keypoints_on_corner_pattern(self, rng):
        sift = SiftLite(contrast_threshold=2.0)
        plane = rng.uniform(90, 110, size=(64, 64))
        plane[20:44, 20:44] += 90.0
        keypoints = sift.detect(plane)
        assert keypoints, "a high-contrast square should yield keypoints"

    def test_descriptors_normalised(self, rng):
        sift = SiftLite(contrast_threshold=2.0)
        plane = rng.uniform(0, 255, size=(72, 72))
        features = sift.extract(plane)
        if features.num_keypoints == 0:
            pytest.skip("no keypoints on this random draw")
        norms = np.linalg.norm(features.descriptors, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)
        assert features.descriptors.shape[1] == 128

    def test_identical_frames_match_fully(self, rng):
        sift = SiftLite(contrast_threshold=2.0)
        plane = rng.uniform(0, 255, size=(72, 72))
        features = sift.extract(plane)
        if features.num_keypoints == 0:
            pytest.skip("no keypoints on this random draw")
        assert sift.match_fraction(features, features) > 0.9

    def test_detector_scores_change(self, rng):
        detector = SiftChangeDetector(SiftLite(contrast_threshold=2.0))
        background = rng.uniform(0, 255, size=(72, 72))
        assert detector.score_next(background) == float("inf")
        same = detector.score_next(background)
        different = detector.score_next(rng.uniform(0, 255, size=(72, 72)))
        assert different >= same

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            SiftLite(num_scales=2)
        with pytest.raises(ConfigurationError):
            SiftLite(ratio_threshold=0.0)


class TestThresholding:
    def test_sampler_always_keeps_first_frame(self):
        sampler = ThresholdSampler(threshold=10.0)
        assert sampler.sample([0.0, 1.0, 2.0]) == [0]

    def test_sampler_threshold_and_interval(self):
        scores = [float("inf"), 0.0, 20.0, 20.0, 0.0, 20.0]
        assert ThresholdSampler(10.0).sample(scores) == [0, 2, 3, 5]
        assert ThresholdSampler(10.0, min_interval=3).sample(scores) == [0, 3]

    def test_threshold_for_target_fraction(self):
        scores = [float("inf")] + [float(value) for value in range(1, 100)]
        threshold = threshold_for_sampling_fraction(scores, 0.10)
        assert sampled_fraction(scores, threshold) == pytest.approx(0.10, abs=0.02)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                    min_size=5, max_size=80),
           st.floats(min_value=0.05, max_value=1.0))
    def test_property_threshold_fraction_close(self, scores, fraction):
        scores = [float("inf")] + scores
        threshold = threshold_for_sampling_fraction(scores, fraction)
        achieved = sampled_fraction(scores, threshold)
        # The achieved rate is the closest achievable one; it never exceeds
        # sampling every frame and never drops below sampling just the first.
        assert 1.0 / len(scores) <= achieved <= 1.0
